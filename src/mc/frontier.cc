#include "mc/frontier.h"

#include <chrono>

namespace mcfs::mc {

SharedFrontier::SharedFrontier(int workers) : workers_(workers) {}

void SharedFrontier::Push(FrontierEntry entry) {
  // Round-robin stripe choice: consecutive publishes spread across the
  // stripes, so a burst (a whole exit-published stack) never serializes
  // stealers behind one mutex.
  const std::uint64_t seq = pushed_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t home = static_cast<std::size_t>(seq) % kStripeCount;
  {
    std::lock_guard<std::mutex> lock(stripes_[home].mu);
    stripes_[home].entries.push_back(std::move(entry));
  }
  const std::uint64_t now = size_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  // Empty critical section before the notify: a waiter holds term_mu_
  // from its emptiness check until it enters the wait, so acquiring the
  // mutex here guarantees the notify cannot slip into that window.
  { std::lock_guard<std::mutex> lock(term_mu_); }
  cv_.notify_one();
}

std::optional<FrontierEntry> SharedFrontier::TrySteal(int worker) {
  const std::size_t start =
      static_cast<std::size_t>(worker) % kStripeCount;
  for (std::size_t i = 0; i < kStripeCount; ++i) {
    Stripe& stripe = stripes_[(start + i) % kStripeCount];
    std::lock_guard<std::mutex> lock(stripe.mu);
    if (stripe.entries.empty()) continue;
    FrontierEntry entry = std::move(stripe.entries.front());
    stripe.entries.pop_front();
    size_.fetch_sub(1, std::memory_order_relaxed);
    stolen_.fetch_add(1, std::memory_order_relaxed);
    return entry;
  }
  return std::nullopt;
}

void SharedFrontier::WorkerStarted() {
  std::lock_guard<std::mutex> lock(term_mu_);
  ++busy_;
  // A sequential swarm runs workers one after another over the same
  // frontier; a fresh worker re-opens a previously drained swarm.
  drained_ = false;
}

void SharedFrontier::Retire() {
  {
    std::lock_guard<std::mutex> lock(term_mu_);
    --busy_;
    if (busy_ == 0 && size_.load(std::memory_order_relaxed) == 0) {
      drained_ = true;
    }
  }
  // Wake waiters unconditionally: either to observe drained/stopped, or
  // — if entries remain and this was the last busy worker — to claim
  // them and become busy again.
  cv_.notify_all();
}

std::optional<FrontierEntry> SharedFrontier::StealOrTerminate(
    int worker, double* idle_seconds) {
  // The unbounded wait is just the bounded round repeated: a kTimeout
  // verdict (deadline passed with the swarm still live) simply re-arms.
  constexpr std::chrono::milliseconds kRound{60'000};
  for (;;) {
    StealWaitResult round = StealOrTerminateFor(worker, kRound, idle_seconds);
    switch (round.outcome) {
      case StealWait::kEntry:
        return std::move(round.entry);
      case StealWait::kTimeout:
        continue;
      case StealWait::kDrained:
      case StealWait::kStopped:
        return std::nullopt;
    }
  }
}

SharedFrontier::StealWaitResult SharedFrontier::StealOrTerminateFor(
    int worker, std::chrono::milliseconds timeout, double* idle_seconds) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    if (stopped_.load(std::memory_order_acquire)) {
      return {StealWait::kStopped, std::nullopt};
    }
    if (auto entry = TrySteal(worker)) {
      return {StealWait::kEntry, std::move(entry)};
    }

    std::unique_lock<std::mutex> lock(term_mu_);
    if (stopped_.load(std::memory_order_relaxed)) {
      return {StealWait::kStopped, std::nullopt};
    }
    if (size_.load(std::memory_order_relaxed) > 0) continue;  // race: retry
    --busy_;
    // Re-check after the decrement: publishes only come from busy
    // workers, so with busy_ == 0 the emptiness check is definitive.
    if (busy_ == 0) {
      drained_ = true;
      ++busy_;  // rebalance: the caller's Retire() decrements once more
      lock.unlock();
      cv_.notify_all();
      return {StealWait::kDrained, std::nullopt};
    }
    const auto wait_start = std::chrono::steady_clock::now();
    const bool signalled = cv_.wait_until(lock, deadline, [this] {
      return drained_ || stopped_.load(std::memory_order_relaxed) ||
             size_.load(std::memory_order_relaxed) > 0;
    });
    if (idle_seconds != nullptr) {
      *idle_seconds += std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - wait_start)
                           .count();
    }
    ++busy_;  // busy again: to claim an entry, retire, or retry a round
    if (drained_) return {StealWait::kDrained, std::nullopt};
    if (stopped_.load(std::memory_order_relaxed)) {
      return {StealWait::kStopped, std::nullopt};
    }
    if (!signalled) return {StealWait::kTimeout, std::nullopt};
    // Loop around to TrySteal; on failure (a peer won the race) the
    // worker re-enters the idle path.
  }
}

SharedFrontier::StealWaitResult SharedFrontier::BeginWait(int worker) {
  for (;;) {
    if (stopped_.load(std::memory_order_acquire)) {
      return {StealWait::kStopped, std::nullopt};
    }
    if (auto entry = TrySteal(worker)) {
      return {StealWait::kEntry, std::move(entry)};
    }
    std::unique_lock<std::mutex> lock(term_mu_);
    if (stopped_.load(std::memory_order_relaxed)) {
      return {StealWait::kStopped, std::nullopt};
    }
    if (size_.load(std::memory_order_relaxed) > 0) continue;  // race: retry
    if (drained_) return {StealWait::kDrained, std::nullopt};
    --busy_;
    if (busy_ == 0) {
      drained_ = true;
      ++busy_;  // rebalance: the caller's Retire() decrements once more
      lock.unlock();
      cv_.notify_all();
      return {StealWait::kDrained, std::nullopt};
    }
    // Parked: the worker counts idle until PollWait concludes or
    // CancelWait abandons the wait.
    return {StealWait::kTimeout, std::nullopt};
  }
}

SharedFrontier::StealWaitResult SharedFrontier::PollWait(int worker) {
  {
    std::lock_guard<std::mutex> lock(term_mu_);
    if (drained_) {
      ++busy_;  // rebalance, exactly like the woken condvar sleeper
      return {StealWait::kDrained, std::nullopt};
    }
    if (stopped_.load(std::memory_order_relaxed)) {
      ++busy_;
      return {StealWait::kStopped, std::nullopt};
    }
    // Speculatively busy while probing — the steal must not race a
    // drained verdict (publishes and steals only happen while busy).
    ++busy_;
  }
  for (;;) {
    if (auto entry = TrySteal(worker)) {
      return {StealWait::kEntry, std::move(entry)};
    }
    std::unique_lock<std::mutex> lock(term_mu_);
    if (stopped_.load(std::memory_order_relaxed)) {
      return {StealWait::kStopped, std::nullopt};
    }
    if (size_.load(std::memory_order_relaxed) > 0) continue;  // race: retry
    --busy_;
    if (busy_ == 0) {
      drained_ = true;
      ++busy_;
      lock.unlock();
      cv_.notify_all();
      return {StealWait::kDrained, std::nullopt};
    }
    return {StealWait::kTimeout, std::nullopt};  // still parked
  }
}

void SharedFrontier::CancelWait(int worker) {
  (void)worker;
  // Matches the blocking path's kTimeout verdict: the worker counts
  // busy again between rounds.
  std::lock_guard<std::mutex> lock(term_mu_);
  ++busy_;
}

void SharedFrontier::RequestStop() {
  {
    std::lock_guard<std::mutex> lock(term_mu_);
    stopped_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
}

}  // namespace mcfs::mc

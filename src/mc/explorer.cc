#include "mc/explorer.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <numeric>
#include <vector>

namespace mcfs::mc {

namespace {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

Explorer::Explorer(System& system, ExplorerOptions options)
    : system_(system),
      options_(options),
      visited_(1024),
      rng_(options.seed) {
  if (options_.use_bitstate && options_.shared_store == nullptr) {
    bitstate_.emplace(options_.bitstate_bits);
  }
  if (options_.resume_visited != nullptr) {
    auto resumed = VisitedTable::Deserialize(*options_.resume_visited);
    if (resumed.ok()) {
      if (options_.shared_store != nullptr) {
        // Seed the shared store too: resumed states must cost no worker
        // any discovery credit, not just this one. One batched insert —
        // a resumed image can hold millions of digests, and on a remote
        // store that would otherwise be millions of round-trips.
        std::vector<Md5Digest> seeds;
        resumed.value().ForEach(
            [&seeds](const Md5Digest& digest) { seeds.push_back(digest); });
        (void)options_.shared_store->InsertBatch(seeds);
      }
      visited_ = std::move(resumed).value();
    } else {
      // A rejected image (truncated, garbage, or the empty sentinel a
      // bitstate run would produce) must not silently degrade into a
      // fresh search: the caller asked to *resume*, and re-counting
      // already-explored states would corrupt every downstream figure.
      resume_status_ = resumed.error();
    }
  }
}

Result<Bytes> Explorer::ExportCheckpoint() const {
  if (bitstate_.has_value()) {
    // Bitstate mode never populates visited_; serializing it would yield
    // an empty image that a resumed run would happily accept as "no
    // states explored yet".
    return Errno::kENOTSUP;
  }
  return visited_.Serialize();
}

void Explorer::AccountMemory() {
  if (options_.memory == nullptr) return;
  std::uint64_t table_bytes;
  if (options_.shared_store != nullptr) {
    // The worker pays for its walk-control table plus the shared store
    // (which every sharer reports — the model cares about pressure, not
    // exact attribution).
    table_bytes = options_.shared_store->bytes_used() + visited_.bytes_used();
  } else if (options_.use_bitstate) {
    table_bytes = bitstate_->bytes_used();
  } else {
    table_bytes = visited_.bytes_used();
  }
  (void)options_.memory->SetUsage(table_bytes + stored_state_bytes_);
}

bool Explorer::ShouldStop() {
  if (options_.cancel != nullptr &&
      options_.cancel->load(std::memory_order_relaxed)) {
    stats_.cancelled = true;
    return true;
  }
  // A remote peer's violation reaches this host as the frontier's sticky
  // stop (the swarm raises it alongside the cancel flag); polling it
  // here halts mid-search workers that would never observe the remote
  // cancel otherwise.
  if (options_.shared_frontier != nullptr &&
      options_.shared_frontier->stopped()) {
    stats_.cancelled = true;
    return true;
  }
  if (options_.target_unique_states != 0) {
    // The target is judged against the shared store, so buffered credit
    // must be resolved first — at the cost of degrading the batch to the
    // interval between ShouldStop calls while a target is armed.
    FlushCreditBuffer();
    const std::uint64_t known = options_.shared_store != nullptr
                                    ? options_.shared_store->size()
                                    : stats_.unique_states;
    if (known >= options_.target_unique_states) {
      stats_.cancelled = true;
      return true;
    }
  }
  return false;
}

bool Explorer::BufferSharedCredit() const {
  return options_.mode == SearchMode::kRandomWalk &&
         options_.shared_store != nullptr && options_.store_batch_size > 1;
}

void Explorer::FlushCreditBuffer() {
  if (credit_buffer_.empty()) return;
  const std::vector<StoreInsert> results =
      options_.shared_store->InsertBatch(credit_buffer_);
  credit_buffer_.clear();
  bool resized = false;
  std::uint64_t rehashed = 0;
  for (const StoreInsert& r : results) {
    if (r.inserted) {
      ++stats_.unique_states;
      stored_state_bytes_ += system_.ConcreteStateBytes();
    } else {
      ++stats_.revisits;
    }
    resized |= r.resized;
    rehashed += r.rehashed;
  }
  if (resized && options_.clock != nullptr) {
    options_.clock->Advance(rehashed * options_.rehash_cost_per_entry);
  }
  AccountMemory();
}

Explorer::RecordResult Explorer::RecordState(const Md5Digest& digest) {
  RecordResult result;
  if (options_.shared_store != nullptr) {
    // The private table stays authoritative for *walk control* (the
    // worker's own revisit structure); the shared store arbitrates the
    // *discovery credit*: whichever worker inserts a state first
    // swarm-wide owns it, so summed per-worker uniques equal the union.
    const VisitedTable::InsertResult local = visited_.Insert(digest);
    if (local.resized && options_.clock != nullptr) {
      options_.clock->Advance(local.rehashed *
                              options_.rehash_cost_per_entry);
    }
    result.locally_new = local.inserted;
    if (local.inserted) {
      if (BufferSharedCredit()) {
        // Walk mode: the shared insert settles only the discovery
        // credit (the walk steers by locally_new), so it is deferred
        // into a batch — one round-trip per store_batch_size states on
        // a socket-backed store. unique/revisit accounting happens at
        // flush time; globally_new is provisional and unused here.
        result.globally_new = true;
        credit_buffer_.push_back(digest);
        if (credit_buffer_.size() >= options_.store_batch_size) {
          FlushCreditBuffer();
        }
        return result;
      }
      // Only a locally-new state can be globally new: if this worker saw
      // it before, it inserted it into the shared store then.
      const StoreInsert shared = options_.shared_store->Insert(digest);
      if (shared.resized && options_.clock != nullptr) {
        options_.clock->Advance(shared.rehashed *
                                options_.rehash_cost_per_entry);
      }
      result.globally_new = shared.inserted;
    }
  } else if (options_.use_bitstate) {
    result.locally_new = result.globally_new = bitstate_->Insert(digest);
  } else {
    const VisitedTable::InsertResult r = visited_.Insert(digest);
    if (r.resized && options_.clock != nullptr) {
      // The resize stall of Figure 3: exploration pauses while every
      // stored digest is rehashed into the doubled table.
      options_.clock->Advance(r.rehashed * options_.rehash_cost_per_entry);
    }
    result.locally_new = result.globally_new = r.inserted;
  }
  if (result.globally_new) {
    ++stats_.unique_states;
    // Spin retains per-state restore information; account for it even in
    // modes that do not keep the bytes live (the memory pressure is what
    // Figure 3 measures).
    stored_state_bytes_ += system_.ConcreteStateBytes();
  } else {
    ++stats_.revisits;
  }
  AccountMemory();
  return result;
}

void Explorer::MaybeSample() {
  if (!options_.progress_callback || options_.progress_interval_ops == 0) {
    return;
  }
  if (stats_.operations % options_.progress_interval_ops != 0) return;
  // Samples feed the swarm's merged (store-exact) series: resolve any
  // buffered credit so this worker's counters agree with the store.
  FlushCreditBuffer();
  ProgressSample sample;
  sample.operations = stats_.operations;
  sample.sim_seconds =
      options_.clock != nullptr ? options_.clock->seconds() : 0;
  sample.unique_states = stats_.unique_states;
  sample.swap_used_bytes =
      options_.memory != nullptr ? options_.memory->swap_used() : 0;
  sample.table_resizes = options_.shared_store != nullptr
                             ? options_.shared_store->resize_count()
                             : visited_.resize_count();
  sample.por_pruned_transitions = stats_.por_pruned_transitions;
  options_.progress_callback(sample);
}

ExploreStats Explorer::Run() {
  stats_ = ExploreStats{};
  stored_state_bytes_ = 0;
  credit_buffer_.clear();
  sleep_map_.clear();
  // A zero batch size reads as "no batching", and the flush paths guard
  // on a non-empty buffer anyway — but clamping to 1 makes the
  // invariant ("every locally-new digest's credit is resolved within
  // batch_size insertions") hold by construction instead of by the
  // accident of `size() >= 0` always being true.
  if (options_.store_batch_size == 0) options_.store_batch_size = 1;
  if (!resume_status_.ok()) {
    stats_.violation_report =
        "resume_visited checkpoint rejected: " +
        std::string(ErrnoName(resume_status_.error()));
    return stats_;
  }
  const double sim_start =
      options_.clock != nullptr ? options_.clock->seconds() : 0;
  WallTimer timer;

  switch (options_.mode) {
    case SearchMode::kDfs:
      stats_ = RunDfs();
      break;
    case SearchMode::kRandomWalk:
      stats_ = RunRandomWalk();
      break;
  }

  stats_.wall_seconds = timer.seconds();
  stats_.sim_seconds =
      (options_.clock != nullptr ? options_.clock->seconds() : 0) - sim_start;
  return stats_;
}

// ---------------------------------------------------------------------------
// Depth-first search with backtracking

ExploreStats Explorer::RunDfs() {
  struct Frame {
    SnapshotId snapshot;
    Md5Digest digest;                // abstract hash of this node
    std::vector<std::size_t> order;  // randomized untried action order
    std::size_t next = 0;
    std::uint32_t depth = 0;         // distance from the true root
    // True while the system's live state equals this frame's state, so
    // the first child needs no restore.
    bool state_current = true;
    // POR sleep set at this node (sorted action indices; empty when POR
    // is inactive). An action in it was already explored by an earlier
    // sibling branch it commutes with, so re-running it here would only
    // rebuild an interleaving whose representative is covered.
    std::vector<std::uint32_t> sleep;
  };

  Frontier* frontier = options_.shared_frontier;
  if (frontier != nullptr) frontier->WorkerStarted();

  // POR activates only for a solo exact DFS (see ExplorerOptions::por).
  // Shared-store/frontier runs prune by peer claims and donate pending
  // branches — a peer cannot know what this worker's sleep sets covered;
  // bitstate cannot key the sleep map (false positives would mistake a
  // fresh state for a revisit with stored sleep ∅); a resumed image
  // carries visited digests but not their sleep sets.
  por_active_ = options_.por && options_.shared_store == nullptr &&
                frontier == nullptr && !options_.use_bitstate &&
                options_.resume_visited == nullptr;
  if (por_active_) {
    dependence_ = DependenceMatrix::Build(system_);
    // A fully-dependent matrix makes every sleep set empty forever; skip
    // the bookkeeping instead of paying it for nothing.
    if (dependence_.reducible_actions() == 0) por_active_ = false;
  }
  stats_.por_active = por_active_;

  const Md5Digest root_digest = system_.AbstractHash();
  RecordState(root_digest);

  auto make_order = [this](const std::vector<std::uint32_t>& sleep) {
    std::vector<std::size_t> order;
    order.reserve(system_.ActionCount() - sleep.size());
    for (std::size_t a = 0; a < system_.ActionCount(); ++a) {
      if (!sleep.empty() &&
          std::binary_search(sleep.begin(), sleep.end(),
                             static_cast<std::uint32_t>(a))) {
        continue;
      }
      order.push_back(a);
    }
    // Fisher-Yates with the seeded RNG: different seeds diversify the
    // exploration order (the lever swarm verification pulls).
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng_.Below(i)]);
    }
    return order;
  };

  std::vector<Frame> stack;
  // Prefix of the current work unit: empty for the root unit, the
  // stolen entry's trail after a steal. base_names mirrors it as action
  // names so violation trails stay complete end-to-end.
  std::vector<std::uint32_t> base_trail;
  std::vector<std::string> base_names;

  // In frontier mode, one never-discarded snapshot of the initial state
  // anchors trail replays.
  std::optional<SnapshotId> replay_base;

  enum class Halt { kNone, kBudget, kStop, kViolation, kError };
  Halt halt = Halt::kNone;

  auto fail = [this, &halt](const char* what) {
    stats_.violation_report = what;
    halt = Halt::kError;
  };

  if (frontier != nullptr) {
    auto base = system_.SaveConcrete();
    if (!base.ok()) {
      fail("SaveConcrete failed at root");
    } else {
      ++stats_.snapshots_taken;
      replay_base = base.value();
    }
  }

  if (halt == Halt::kNone) {
    auto root_snap = system_.SaveConcrete();
    if (!root_snap.ok()) {
      fail("SaveConcrete failed at root");
    } else {
      ++stats_.snapshots_taken;
      stack.push_back(
          Frame{root_snap.value(), root_digest, make_order({}), 0, 0, true});
    }
  }

  auto collect_trail = [&stack, &base_names, this]() {
    std::vector<std::string> trail = base_names;
    for (const Frame& f : stack) {
      if (f.next > 0) trail.push_back(system_.ActionName(f.order[f.next - 1]));
    }
    return trail;
  };

  // Action-index trail from the true root to stack[i]'s node: the base
  // prefix plus the applied action of every frame below i.
  auto trail_to_frame = [&stack, &base_trail](std::size_t i) {
    std::vector<std::uint32_t> trail = base_trail;
    for (std::size_t j = 0; j < i; ++j) {
      trail.push_back(
          static_cast<std::uint32_t>(stack[j].order[stack[j].next - 1]));
    }
    return trail;
  };

  // Proactive donation: while the frontier is hungry, disown the tail
  // half of the untried actions of the shallowest frame that still has
  // at least two (the shallowest branches root the biggest subtrees).
  // The donor will not descend donated branches — exactly-once transfer.
  auto donate = [&]() {
    for (std::size_t i = 0; i < stack.size(); ++i) {
      Frame& f = stack[i];
      const std::size_t rem = f.order.size() - f.next;
      if (rem < 2) continue;
      const std::size_t give = rem / 2;
      FrontierEntry entry;
      entry.trail = trail_to_frame(i);
      entry.digest = f.digest;
      entry.pending.assign(f.order.end() - static_cast<std::ptrdiff_t>(give),
                           f.order.end());
      f.order.resize(f.order.size() - give);
      frontier->Push(std::move(entry));
      ++stats_.frontier_published;
      return;
    }
  };

  // Budget exit: publish every frame's untried siblings so the subtree
  // this worker abandons mid-search is finished by its peers instead of
  // silently lost (the §7.1 starvation cure).
  auto publish_stack = [&]() {
    for (std::size_t i = 0; i < stack.size(); ++i) {
      const Frame& f = stack[i];
      if (f.next >= f.order.size()) continue;
      FrontierEntry entry;
      entry.trail = trail_to_frame(i);
      entry.digest = f.digest;
      for (std::size_t j = f.next; j < f.order.size(); ++j) {
        entry.pending.push_back(static_cast<std::uint32_t>(f.order[j]));
      }
      frontier->Push(std::move(entry));
      ++stats_.frontier_published;
    }
  };

  // Replays a stolen trail from the initial state and verifies the
  // digest. On success the stolen node becomes the new stack root.
  auto adopt = [&](FrontierEntry entry) -> bool {
    if (Status s = system_.RestoreConcrete(*replay_base); !s.ok()) {
      fail("RestoreConcrete failed before steal replay");
      return false;
    }
    std::vector<std::string> names;
    names.reserve(entry.trail.size());
    for (const std::uint32_t action : entry.trail) {
      if (Status s = system_.ApplyAction(action); !s.ok()) {
        fail("checker infrastructure failure replaying stolen trail");
        return false;
      }
      ++stats_.steal_replay_ops;
      names.push_back(system_.ActionName(action));
      if (system_.violation_detected()) {
        // The publisher traversed this prefix violation-free, so a
        // violation here is itself a determinism discrepancy worth
        // surfacing with its full trail.
        stats_.violation_found = true;
        stats_.violation_report = system_.violation_report();
        stats_.violation_trail = std::move(names);
        halt = Halt::kViolation;
        return false;
      }
    }
    if (system_.AbstractHash() != entry.digest) {
      // Replay did not reconstruct the publisher's state: drop the entry
      // (the publisher's claim on the digest keeps the store sound) and
      // let the caller steal the next one.
      ++stats_.steal_digest_mismatches;
      return false;
    }
    auto snap = system_.SaveConcrete();
    if (!snap.ok()) {
      fail("SaveConcrete failed adopting stolen entry");
      return false;
    }
    ++stats_.snapshots_taken;
    ++stats_.steals;
    base_trail = std::move(entry.trail);
    base_names = std::move(names);
    Frame frame;
    frame.snapshot = snap.value();
    frame.digest = entry.digest;
    frame.order.assign(entry.pending.begin(), entry.pending.end());
    frame.depth = static_cast<std::uint32_t>(base_trail.size());
    stack.push_back(std::move(frame));
    return true;
  };

  while (halt == Halt::kNone) {
    while (!stack.empty()) {
      if (stats_.operations >= options_.max_operations) {
        halt = Halt::kBudget;
        break;
      }
      if (ShouldStop()) {
        halt = Halt::kStop;
        break;
      }
      Frame& frame = stack.back();

      if (frame.next == frame.order.size()) {
        // Subtree exhausted: drop this node's snapshot and return to the
        // parent's state.
        (void)system_.DiscardConcrete(frame.snapshot);
        stack.pop_back();
        if (!stack.empty()) {
          (void)system_.RestoreConcrete(stack.back().snapshot);
          if (options_.memory != nullptr) {
            options_.memory->Touch(system_.ConcreteStateBytes());
          }
          ++stats_.backtracks;
          stack.back().state_current = true;
        }
        continue;
      }

      if (!frame.state_current) {
        if (Status s = system_.RestoreConcrete(frame.snapshot); !s.ok()) {
          fail("RestoreConcrete failed mid-search");
          break;
        }
        if (options_.memory != nullptr) {
          options_.memory->Touch(system_.ConcreteStateBytes());
        }
        ++stats_.backtracks;
      }
      frame.state_current = false;

      const std::size_t action = frame.order[frame.next++];
      if (Status s = system_.ApplyAction(action); !s.ok()) {
        stats_.violation_found = true;
        stats_.violation_report =
            "checker infrastructure failure applying action: " +
            system_.ActionName(action);
        stats_.violation_trail = collect_trail();
        halt = Halt::kViolation;
        break;
      }
      ++stats_.operations;
      MaybeSample();

      if (system_.violation_detected()) {
        stats_.violation_found = true;
        stats_.violation_report = system_.violation_report();
        stats_.violation_trail = collect_trail();
        halt = Halt::kViolation;
        break;
      }

      if (options_.crash_mode != CrashMode::kOff) {
        if (Status s = system_.CrashCheck(); !s.ok()) {
          fail("crash-check infrastructure failure");
          break;
        }
        if (system_.violation_detected()) {
          stats_.violation_found = true;
          stats_.violation_report = system_.violation_report();
          stats_.violation_trail = collect_trail();
          halt = Halt::kViolation;
          break;
        }
      }

      // Sleep-set bookkeeping (Godefroid). The child inherits the slept
      // transitions that commute with `action` — their interleavings
      // with it are covered on the sibling branch that ran them first —
      // and `action` itself then joins this frame's sleep set so the
      // remaining siblings skip re-running its commuting interleavings.
      // Both updates must land before the push below invalidates the
      // `frame` reference.
      std::vector<std::uint32_t> child_sleep;
      if (por_active_) {
        for (const std::uint32_t slept : frame.sleep) {
          if (dependence_.independent(action, slept)) {
            child_sleep.push_back(slept);  // stays sorted
          }
        }
        const auto a32 = static_cast<std::uint32_t>(action);
        frame.sleep.insert(
            std::lower_bound(frame.sleep.begin(), frame.sleep.end(), a32),
            a32);
      }

      // Descend only below globally-new states: under a shared store
      // this prunes subtrees a peer already claimed, partitioning the
      // tree across the swarm.
      const std::uint32_t child_depth = frame.depth + 1;
      const Md5Digest child_digest = system_.AbstractHash();
      const bool is_new = RecordState(child_digest).globally_new;
      if (is_new && child_depth < options_.max_depth) {
        auto snap = system_.SaveConcrete();
        if (!snap.ok()) {
          fail("SaveConcrete failed mid-search");
          break;
        }
        ++stats_.snapshots_taken;
        stats_.max_depth_reached =
            std::max<std::uint64_t>(stats_.max_depth_reached, child_depth);
        Frame child{snap.value(), child_digest, make_order(child_sleep), 0,
                    child_depth, true};
        if (por_active_) {
          stats_.por_pruned_transitions += child_sleep.size();
          if (!child_sleep.empty()) {
            // Remember what this (first) visit left asleep: a later
            // visit arriving with a smaller sleep set must re-awaken the
            // difference, or its interleavings would be silently lost.
            sleep_map_[child_digest] = child_sleep;
          }
          child.sleep = std::move(child_sleep);
        }
        stack.push_back(std::move(child));
        if (frontier != nullptr && frontier->Hungry()) donate();
      } else if (por_active_ && !is_new && child_depth < options_.max_depth) {
        // Revisit under POR: sound only if everything the first visit
        // slept is also asleep now. Transitions slept then but awake now
        // were never explored from this state on any path — re-expand
        // the node on exactly those, and shrink the stored sleep set to
        // the intersection so the state never owes them again.
        const auto it = sleep_map_.find(child_digest);
        if (it != sleep_map_.end()) {
          std::vector<std::uint32_t> awake;
          std::vector<std::uint32_t> still_asleep;
          for (const std::uint32_t slept : it->second) {
            if (std::binary_search(child_sleep.begin(), child_sleep.end(),
                                   slept)) {
              still_asleep.push_back(slept);
            } else {
              awake.push_back(slept);
            }
          }
          if (!awake.empty()) {
            if (still_asleep.empty()) {
              sleep_map_.erase(it);
            } else {
              it->second = std::move(still_asleep);
            }
            auto snap = system_.SaveConcrete();
            if (!snap.ok()) {
              fail("SaveConcrete failed mid-search");
              break;
            }
            ++stats_.snapshots_taken;
            ++stats_.por_sleep_awakened;
            stats_.max_depth_reached =
                std::max<std::uint64_t>(stats_.max_depth_reached, child_depth);
            Frame child{snap.value(), child_digest, {}, 0, child_depth, true};
            child.order.assign(awake.begin(), awake.end());
            for (std::size_t i = child.order.size(); i > 1; --i) {
              std::swap(child.order[i - 1], child.order[rng_.Below(i)]);
            }
            child.sleep = std::move(child_sleep);
            stack.push_back(std::move(child));
          }
        }
      }
      // On a plain revisit (or at the depth bound) the loop simply
      // continues; the next iteration restores this frame's snapshot.
    }

    if (halt == Halt::kBudget && frontier != nullptr) publish_stack();
    if (halt != Halt::kNone) break;

    // Local stack exhausted. Solo explorers are done; swarm workers turn
    // to the shared frontier instead of going idle.
    if (frontier == nullptr) break;
    auto entry = frontier->StealOrTerminate(options_.worker_id,
                                            &stats_.steal_wait_seconds);
    if (!entry.has_value()) break;  // swarm drained or stopped
    (void)adopt(std::move(entry).value());
    // A digest mismatch leaves the stack empty; the outer loop simply
    // steals the next entry (or terminates).
  }

  // Unwind any remaining snapshots.
  for (const auto& frame : stack) {
    (void)system_.DiscardConcrete(frame.snapshot);
  }
  if (replay_base.has_value()) {
    (void)system_.DiscardConcrete(*replay_base);
  }
  if (frontier != nullptr) frontier->Retire();
  return stats_;
}

// ---------------------------------------------------------------------------
// Long random walk with revisit backtracking

ExploreStats Explorer::RunRandomWalk() {
  RecordState(system_.AbstractHash());

  auto frontier = system_.SaveConcrete();
  if (!frontier.ok()) {
    stats_.violation_report = "SaveConcrete failed at root";
    return stats_;
  }
  ++stats_.snapshots_taken;
  SnapshotId frontier_snap = frontier.value();

  std::deque<std::string> trail;
  constexpr std::size_t kTrailCap = 128;

  while (stats_.operations < options_.max_operations) {
    if (ShouldStop()) break;
    const std::size_t count = system_.ActionCount();
    if (count == 0) break;
    const auto action = static_cast<std::size_t>(rng_.Below(count));

    if (Status s = system_.ApplyAction(action); !s.ok()) {
      stats_.violation_found = true;
      stats_.violation_report =
          "checker infrastructure failure applying action: " +
          system_.ActionName(action);
      break;
    }
    ++stats_.operations;
    trail.push_back(system_.ActionName(action));
    if (trail.size() > kTrailCap) trail.pop_front();
    MaybeSample();

    if (system_.violation_detected()) {
      stats_.violation_found = true;
      stats_.violation_report = system_.violation_report();
      stats_.violation_trail.assign(trail.begin(), trail.end());
      break;
    }

    if (options_.crash_mode != CrashMode::kOff) {
      if (Status s = system_.CrashCheck(); !s.ok()) {
        stats_.violation_found = true;
        stats_.violation_report = "crash-check infrastructure failure";
        break;
      }
      if (system_.violation_detected()) {
        stats_.violation_found = true;
        stats_.violation_report = system_.violation_report();
        stats_.violation_trail.assign(trail.begin(), trail.end());
        break;
      }
    }

    // Frontier control is LOCAL even under a shared store: bouncing off
    // peer-claimed states would trap the walk once its neighbourhood is
    // claimed (the frontier could never advance through them). The walk
    // moves exactly as a solo walk would; only the discovery credit is
    // arbitrated globally.
    if (RecordState(system_.AbstractHash()).locally_new) {
      // New frontier: advance the rolling snapshot.
      (void)system_.DiscardConcrete(frontier_snap);
      auto snap = system_.SaveConcrete();
      if (!snap.ok()) {
        stats_.violation_report = "SaveConcrete failed mid-walk";
        break;
      }
      ++stats_.snapshots_taken;
      frontier_snap = snap.value();
    } else {
      // Already-seen abstract state: backtrack to the frontier, as Spin
      // does when a transition closes a cycle.
      if (Status s = system_.RestoreConcrete(frontier_snap); !s.ok()) {
        stats_.violation_report = "RestoreConcrete failed mid-walk";
        break;
      }
      if (options_.memory != nullptr) {
        options_.memory->Touch(system_.ConcreteStateBytes());
      }
      ++stats_.backtracks;
    }
  }
  // Settle deferred discovery credit before reporting: the returned
  // stats (and any differential comparison against them) must reflect
  // every state this walk found.
  FlushCreditBuffer();
  (void)system_.DiscardConcrete(frontier_snap);
  return stats_;
}

}  // namespace mcfs::mc

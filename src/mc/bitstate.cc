#include "mc/bitstate.h"

#include <bit>
#include <cmath>

namespace mcfs::mc {

BitstateFilter::BitstateFilter(std::uint64_t bits, int k)
    : bit_count_(std::bit_ceil(std::max<std::uint64_t>(bits, 64))),
      k_(k),
      words_(bit_count_ / 64, 0) {}

std::uint64_t BitstateFilter::Probe(const Md5Digest& digest,
                                    int which) const {
  // Derive independent probes from disjoint digest halves (Kirsch-
  // Mitzenmacher double hashing).
  const std::uint64_t h1 = digest.lo64();
  const std::uint64_t h2 = digest.hi64() | 1;  // odd, so probes cycle fully
  return (h1 + static_cast<std::uint64_t>(which) * h2) & (bit_count_ - 1);
}

bool BitstateFilter::Insert(const Md5Digest& digest) {
  bool any_new = false;
  for (int i = 0; i < k_; ++i) {
    const std::uint64_t bit = Probe(digest, i);
    std::uint64_t& word = words_[bit / 64];
    const std::uint64_t mask = 1ull << (bit % 64);
    if (!(word & mask)) {
      word |= mask;
      ++bits_set_;
      any_new = true;
    }
  }
  return any_new;
}

bool BitstateFilter::MaybeContains(const Md5Digest& digest) const {
  for (int i = 0; i < k_; ++i) {
    const std::uint64_t bit = Probe(digest, i);
    if (!(words_[bit / 64] & (1ull << (bit % 64)))) return false;
  }
  return true;
}

double BitstateFilter::EstimatedFalsePositiveRate() const {
  const double fill =
      static_cast<double>(bits_set_) / static_cast<double>(bit_count_);
  return std::pow(fill, k_);
}

// ---------------------------------------------------------------------------
// ConcurrentBitstateFilter

ConcurrentBitstateFilter::ConcurrentBitstateFilter(std::uint64_t bits, int k)
    : bit_count_(std::bit_ceil(std::max<std::uint64_t>(bits, 64))),
      k_(k),
      word_count_(bit_count_ / 64),
      words_(new std::atomic<std::uint64_t>[word_count_]) {
  for (std::uint64_t i = 0; i < word_count_; ++i) {
    words_[i].store(0, std::memory_order_relaxed);
  }
}

std::uint64_t ConcurrentBitstateFilter::Probe(const Md5Digest& digest,
                                              int which) const {
  const std::uint64_t h1 = digest.lo64();
  const std::uint64_t h2 = digest.hi64() | 1;
  return (h1 + static_cast<std::uint64_t>(which) * h2) & (bit_count_ - 1);
}

StoreInsert ConcurrentBitstateFilter::Insert(const Md5Digest& digest) {
  StoreInsert out;
  std::uint64_t newly_set = 0;
  for (int i = 0; i < k_; ++i) {
    const std::uint64_t bit = Probe(digest, i);
    const std::uint64_t mask = 1ull << (bit % 64);
    const std::uint64_t prev =
        words_[bit / 64].fetch_or(mask, std::memory_order_relaxed);
    if (!(prev & mask)) ++newly_set;
  }
  if (newly_set > 0) {
    out.inserted = true;
    bits_set_.fetch_add(newly_set, std::memory_order_relaxed);
    states_.fetch_add(1, std::memory_order_relaxed);
  }
  return out;
}

bool ConcurrentBitstateFilter::Contains(const Md5Digest& digest) const {
  for (int i = 0; i < k_; ++i) {
    const std::uint64_t bit = Probe(digest, i);
    const std::uint64_t mask = 1ull << (bit % 64);
    if (!(words_[bit / 64].load(std::memory_order_relaxed) & mask)) {
      return false;
    }
  }
  return true;
}

double ConcurrentBitstateFilter::EstimatedFalsePositiveRate() const {
  const double fill = static_cast<double>(bits_set()) /
                      static_cast<double>(bit_count_);
  return std::pow(fill, k_);
}

}  // namespace mcfs::mc

// The model checker's view of a system under test.
//
// MCFS uses Spin; this library implements the subset of Spin's machinery
// the paper relies on (DESIGN.md §2): nondeterministic choice over a
// bounded action set, abstract-state matching (c_track with a hashed
// abstract state, §3.3), and concrete-state save/restore for backtracking.
//
// A System is the bridge: the mcfs syscall engine implements it over a
// pair of file systems, but the checker itself is domain-agnostic —
// anything with bounded actions, an abstraction function, and
// checkpoint/restore can be explored (the paper's §7 notes the approach
// generalizes beyond file systems).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/md5.h"
#include "util/result.h"

namespace mcfs::mc {

// Identifier of a saved concrete state (System-internal meaning).
using SnapshotId = std::uint64_t;

// A static, outcome-independent over-approximation of the state an
// action can read or write, expressed as absolute '/'-separated paths.
// This is the raw material of the partial-order-reduction dependence
// relation (DESIGN.md §7.6): two actions whose footprints are disjoint
// (no shared path, no ancestor/descendant pair across the two sets)
// commute, so the explorer needs only one interleaving of them.
//
// Soundness contract: the footprint must cover every path whose hashed
// node state the action could change OR whose state the action's
// observable outcome depends on, in ANY reachable state — including
// through aliasing (hard links). Under-approximating here silently
// drops interleavings; over-approximating only costs reduction.
struct ActionFootprint {
  std::vector<std::string> paths;
  // The action never mutates hashed state (its outcome may still depend
  // on `paths`). Two read-only actions always commute, whatever their
  // footprints: neither changes the state the other's outcome reads.
  bool reads_only = false;
  // No bounded footprint exists (e.g. a whole-state restore): the
  // action is dependent on everything, including itself.
  bool full = false;
};

class System {
 public:
  virtual ~System() = default;

  // Number of enabled actions in the current state. MCFS's bounded
  // parameter pools make this a fixed, enumerable set.
  virtual std::size_t ActionCount() const = 0;

  // Human-readable action description (for trails and logs).
  virtual std::string ActionName(std::size_t action) const = 0;

  // Executes action `action` in the current state. Returns EIO-class
  // errors only for checker-infrastructure failures; file-system errors
  // (ENOENT, ENOSPC, ...) are part of the explored behaviour, not
  // failures. After the call, check violation_detected().
  virtual Status ApplyAction(std::size_t action) = 0;

  // True if the last ApplyAction uncovered a discrepancy between the
  // file systems under test.
  virtual bool violation_detected() const = 0;
  virtual std::string violation_report() const = 0;

  // The abstraction function (paper Algorithm 1): a 128-bit digest of the
  // current state, excluding noisy attributes.
  virtual Md5Digest AbstractHash() = 0;

  // Concrete-state checkpointing for backtracking. RestoreConcrete must
  // be NON-consuming: the explorer restores the same snapshot once per
  // remaining sibling during DFS. (VeriFS's ioctl_RESTORE discards its
  // snapshot, paper §5 — the syscall engine re-arms it to satisfy this
  // contract.) DiscardConcrete releases the snapshot.
  virtual Result<SnapshotId> SaveConcrete() = 0;
  virtual Status RestoreConcrete(SnapshotId id) = 0;
  virtual Status DiscardConcrete(SnapshotId id) = 0;

  // Bytes held by one saved concrete state (for the memory model).
  virtual std::uint64_t ConcreteStateBytes() const = 0;

  // Crash-consistency hook (ExplorerOptions::crash_mode): enumerate the
  // crash states reachable from the current concrete state, remount and
  // validate each. EIO-class errors are infrastructure failures; a
  // persistence violation is reported through violation_detected() like
  // any other discrepancy. Default: inert, for Systems without a
  // crashable device.
  virtual Status CrashCheck() { return Status::Ok(); }

  // Partial-order-reduction support. The default — a full footprint —
  // makes every action dependent on every other, which turns POR into a
  // no-op for Systems that do not (or cannot soundly) describe their
  // actions' footprints.
  virtual ActionFootprint StaticActionFootprint(std::size_t /*action*/) const {
    ActionFootprint fp;
    fp.full = true;
    return fp;
  }
};

// Counters every exploration produces (benches print these).
struct ExploreStats {
  std::uint64_t operations = 0;       // actions applied (incl. revisits)
  std::uint64_t unique_states = 0;    // abstract states inserted
  std::uint64_t revisits = 0;         // matched an already-seen state
  std::uint64_t backtracks = 0;       // concrete restores performed
  std::uint64_t snapshots_taken = 0;
  std::uint64_t max_depth_reached = 0;
  // Work-stealing (cooperative swarm with a SharedFrontier attached).
  std::uint64_t steals = 0;             // frontier entries adopted
  std::uint64_t steal_replay_ops = 0;   // actions replayed to reach them
  std::uint64_t steal_digest_mismatches = 0;  // replays that failed verify
  std::uint64_t frontier_published = 0;       // entries this worker donated
  double steal_wait_seconds = 0;        // wall time blocked on the frontier
  // Partial-order reduction (sleep sets over the static dependence
  // relation, DESIGN.md §7.6). por_active records whether the run
  // actually reduced (the flag can be on but gated off — bitstate,
  // shared store/frontier, resume); por_pruned_transitions counts
  // enabled transitions skipped at expanded nodes because a commuting
  // representative was explored elsewhere; por_sleep_awakened counts
  // revisited states re-expanded because they were reached with a
  // smaller sleep set than their first visit.
  bool por_active = false;
  std::uint64_t por_pruned_transitions = 0;
  std::uint64_t por_sleep_awakened = 0;
  // Search halted early: a swarm peer raised the cancel flag or the
  // unique-state target was reached (neither is a violation here).
  bool cancelled = false;
  bool violation_found = false;
  std::string violation_report;
  std::vector<std::string> violation_trail;  // action names from the root
  double sim_seconds = 0;   // simulated time consumed
  double wall_seconds = 0;  // host time consumed
};

}  // namespace mcfs::mc

// Bitstate (supertrace) hashing, Spin-style.
//
// When the full visited table cannot fit in memory, Spin's -DBITSTATE
// mode stores k hash-derived bits per state instead of the state digest.
// Membership answers can false-positive (a genuinely new state looks
// visited), trading completeness for memory — the standard big-state-
// space fallback the paper's swarm mode builds on.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "mc/visited_store.h"
#include "util/md5.h"

namespace mcfs::mc {

class BitstateFilter {
 public:
  // `bits` must be a power of two. k is the number of probe bits per
  // state (Spin's default is 2, hence "double-bit hashing").
  explicit BitstateFilter(std::uint64_t bits = 1ull << 20, int k = 2);

  // Marks the state visited. Returns true if it was (apparently) new —
  // i.e., at least one of its probe bits was previously unset.
  bool Insert(const Md5Digest& digest);

  bool MaybeContains(const Md5Digest& digest) const;

  std::uint64_t bits() const { return bit_count_; }
  std::uint64_t bits_set() const { return bits_set_; }
  std::uint64_t bytes_used() const { return words_.size() * 8; }
  // Expected false-positive probability at the current fill level.
  double EstimatedFalsePositiveRate() const;

 private:
  std::uint64_t Probe(const Md5Digest& digest, int which) const;

  std::uint64_t bit_count_;
  int k_;
  std::vector<std::uint64_t> words_;
  std::uint64_t bits_set_ = 0;
};

// Thread-safe bitstate filter for cooperative swarms: the same probe
// scheme over std::atomic words. Insert is a relaxed fetch_or per probe
// bit — lock-free, and safe to hammer from every worker at once. The
// price of relaxed ordering is benign double-counting: two workers
// setting the *same* previously-clear bit in the same instant can both
// see it as new, so size() may slightly overcount distinct states (the
// membership bits themselves are exact — fetch_or is atomic).
class ConcurrentBitstateFilter final : public VisitedStore {
 public:
  explicit ConcurrentBitstateFilter(std::uint64_t bits = 1ull << 20,
                                    int k = 2);

  StoreInsert Insert(const Md5Digest& digest) override;
  bool Contains(const Md5Digest& digest) const override;

  // Apparently-new states inserted (see class comment on overcounting).
  std::uint64_t size() const override {
    return states_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_used() const override { return word_count_ * 8; }
  std::uint64_t resize_count() const override { return 0; }  // fixed size

  std::uint64_t bits() const { return bit_count_; }
  std::uint64_t bits_set() const {
    return bits_set_.load(std::memory_order_relaxed);
  }
  double EstimatedFalsePositiveRate() const;

 private:
  std::uint64_t Probe(const Md5Digest& digest, int which) const;

  std::uint64_t bit_count_;
  int k_;
  std::uint64_t word_count_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> words_;
  std::atomic<std::uint64_t> bits_set_{0};
  std::atomic<std::uint64_t> states_{0};
};

}  // namespace mcfs::mc

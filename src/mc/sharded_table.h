// Sharded, lock-striped visited-state store for cooperative swarms.
//
// 64 shards, each an ordinary VisitedTable guarded by its own mutex.
// The shard is picked from the digest's *upper* 64 bits while the table
// probes with the *lower* 64 bits, so sharding never correlates with a
// shard's internal probe sequence. With 64 stripes and a handful of
// workers, contention is rare: two workers collide only when they hash
// states into the same shard at the same instant.
//
// Aggregate counters (size, resizes, bytes) are atomics maintained at
// insert time so readers never need to sweep the shards — the swarm's
// merged progress sampler and the explorer's target-states check both
// poll size() on the hot path.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>

#include "mc/hash_table.h"
#include "mc/visited_store.h"

namespace mcfs::mc {

class ShardedVisitedTable final : public VisitedStore {
 public:
  static constexpr std::size_t kShardCount = 64;

  explicit ShardedVisitedTable(std::size_t initial_capacity_per_shard = 256);

  StoreInsert Insert(const Md5Digest& digest) override;
  bool Contains(const Md5Digest& digest) const override;

  std::uint64_t size() const override {
    return size_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_used() const override {
    return bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t resize_count() const override {
    return resize_count_.load(std::memory_order_relaxed);
  }

  // Visits every stored digest, shard by shard (each shard locked while
  // it is walked). Not a consistent snapshot under concurrent inserts;
  // call after the workers have joined.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.table.ForEach(fn);
    }
  }

  bool ForEachDigest(
      const std::function<void(const Md5Digest&)>& fn) const override {
    ForEach(fn);
    return true;
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    VisitedTable table;
  };

  static std::size_t ShardOf(const Md5Digest& digest) {
    // Top 6 bits of the upper half; VisitedTable buckets on the lower
    // half, so the two index spaces are independent.
    return static_cast<std::size_t>(digest.hi64() >> 58) & (kShardCount - 1);
  }

  std::array<Shard, kShardCount> shards_;
  std::atomic<std::uint64_t> size_{0};
  std::atomic<std::uint64_t> resize_count_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

}  // namespace mcfs::mc

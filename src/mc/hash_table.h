// The visited-state table: an open-addressing set of 128-bit abstract
// digests, growing by doubling.
//
// Spin keeps an analogous table; the paper's Figure 3 shows its growth is
// operationally visible — a resize stalls exploration ("this rate then
// dropped drastically ... because Spin was resizing its hash table of
// visited states") and its memory footprint eventually spills into swap.
// Insert() therefore reports resize work, and the table exposes its
// exact byte footprint for the MemoryModel.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.h"
#include "util/md5.h"
#include "util/result.h"

namespace mcfs::mc {

class VisitedTable {
 public:
  struct InsertResult {
    bool inserted;            // false if the digest was already present
    bool resized;             // this insert triggered a table resize
    std::uint64_t rehashed;   // entries moved during the resize
  };

  explicit VisitedTable(std::size_t initial_capacity = 1024);

  InsertResult Insert(const Md5Digest& digest);
  bool Contains(const Md5Digest& digest) const;

  // Visits every stored digest (used by swarm verification to merge
  // per-worker coverage).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.occupied) fn(slot.digest);
    }
  }

  // Serialization for exploration checkpoints (paper §7: resume model
  // checking after an interruption).
  Bytes Serialize() const;
  static Result<VisitedTable> Deserialize(ByteView image);

  std::uint64_t size() const { return size_; }
  std::uint64_t capacity() const { return slots_.size(); }
  std::uint64_t resize_count() const { return resize_count_; }
  // Exact footprint: slot array plus bookkeeping.
  std::uint64_t bytes_used() const;

 private:
  struct Slot {
    Md5Digest digest;
    bool occupied = false;
  };

  std::size_t ProbeStart(const Md5Digest& digest, std::size_t modulus) const;
  std::uint64_t Grow();

  std::vector<Slot> slots_;
  std::uint64_t size_ = 0;
  std::uint64_t resize_count_ = 0;
};

}  // namespace mcfs::mc

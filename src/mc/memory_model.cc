#include "mc/memory_model.h"

#include <algorithm>

namespace mcfs::mc {

MemoryModel::MemoryModel(SimClock* clock, MemoryModelOptions options)
    : clock_(clock), options_(options) {}

Status MemoryModel::SetUsage(std::uint64_t bytes) {
  if (bytes > options_.ram_bytes + options_.swap_bytes) {
    return Errno::kENOMEM;
  }
  if (bytes > usage_) {
    const std::uint64_t old_swap = swap_used();
    const std::uint64_t new_swap =
        bytes > options_.ram_bytes ? bytes - options_.ram_bytes : 0;
    if (new_swap > old_swap) {
      // Newly spilled bytes must be written out.
      const std::uint64_t spilled = new_swap - old_swap;
      Charge((spilled + (1 << 20) - 1) / (1 << 20) *
             options_.swap_out_cost_per_mb);
      ++swap_faults_;
    }
  }
  usage_ = bytes;
  return Status::Ok();
}

void MemoryModel::SetLocality(double locality) {
  locality_ = std::clamp(locality, 0.0, 1.0);
}

void MemoryModel::Touch(std::uint64_t bytes) {
  if (usage_ == 0 || swap_used() == 0 || bytes == 0) return;
  const double swap_fraction =
      static_cast<double>(swap_used()) / static_cast<double>(usage_);
  const double miss_fraction = (1.0 - locality_) * swap_fraction;
  const auto swapped_in =
      static_cast<std::uint64_t>(static_cast<double>(bytes) * miss_fraction);
  if (swapped_in == 0) return;
  Charge((swapped_in + (1 << 20) - 1) / (1 << 20) *
         options_.swap_in_cost_per_mb);
  ++swap_faults_;
}

}  // namespace mcfs::mc

// The VFS layer: the "kernel" through which MCFS drives each file system.
//
// Vfs wraps one FileSystem and mediates every operation through kernel-
// style caches (DentryCache + AttrCache). Cache hits are answered without
// consulting the file system — that is what makes the caches useful, and
// also what makes them dangerous: if the file system's persistent state
// is restored by the model checker without remounting, the caches keep
// serving the pre-restore world (paper §3.2).
//
// Mount/unmount charge realistic syscall costs to the SimClock; the
// paper's remount-per-operation workaround is expensive for exactly this
// reason (§6 measures 38-70% speedups from removing it).
#pragma once

#include <string>
#include <unordered_map>

#include "fs/filesystem.h"
#include "util/sim_clock.h"
#include "vfs/cache.h"

namespace mcfs::vfs {

struct VfsOptions {
  // Fixed syscall-path overheads charged to the SimClock (device time is
  // charged separately by the devices themselves). Mount/unmount carry
  // the kernel-side work a real (re)mount does — superblock validation,
  // orphan processing, cache teardown, sync barriers — calibrated so the
  // remount-per-op strategy lands near the paper's ~230 ops/s for the
  // ext2/ext4 RAM-disk pair.
  SimClock::Nanos mount_cost = 100'000;   // 100 us
  SimClock::Nanos unmount_cost = 60'000;  // 60 us
  SimClock::Nanos syscall_cost = 2'000;    // 2 us per VFS entry
  // Disable to bypass the caches entirely (ablation / debugging).
  bool enable_caches = true;
};

// Process-level file descriptor.
using Fd = std::int32_t;

class Vfs {
 public:
  // `clock` may be null (no time accounting).
  Vfs(fs::FileSystemPtr filesystem, SimClock* clock, VfsOptions options = {});

  // ---- mount lifecycle --------------------------------------------------
  Status Mount();
  Status Unmount();
  bool IsMounted() const { return fs_->IsMounted(); }

  // ---- cache-mediated operations -----------------------------------------
  Result<fs::InodeAttr> Stat(const std::string& path);
  Status Mkdir(const std::string& path, fs::Mode mode);
  Status Rmdir(const std::string& path);
  Status Unlink(const std::string& path);
  Result<std::vector<fs::DirEntry>> GetDents(const std::string& path);
  Status Rename(const std::string& from, const std::string& to);
  Status Link(const std::string& existing, const std::string& link);
  Status Symlink(const std::string& target, const std::string& link);
  Result<std::string> ReadLink(const std::string& path);
  Status Access(const std::string& path, std::uint32_t mode);
  Status Truncate(const std::string& path, std::uint64_t size);
  Status Chmod(const std::string& path, fs::Mode mode);
  Status Chown(const std::string& path, std::uint32_t uid, std::uint32_t gid);
  Result<fs::StatVfs> StatFs();
  Status SetXattr(const std::string& path, const std::string& name,
                  ByteView value);
  Result<Bytes> GetXattr(const std::string& path, const std::string& name);
  Result<std::vector<std::string>> ListXattr(const std::string& path);
  Status RemoveXattr(const std::string& path, const std::string& name);

  // ---- descriptor-based I/O ----------------------------------------------
  Result<Fd> Open(const std::string& path, std::uint32_t flags,
                  fs::Mode mode);
  Status Close(Fd fd);
  Result<Bytes> Read(Fd fd, std::uint64_t offset, std::uint64_t size);
  Result<std::uint64_t> Write(Fd fd, std::uint64_t offset, ByteView data);
  Status Fsync(Fd fd);

  // ---- cache control (FUSE lowlevel notify analogues) ---------------------
  // fuse_lowlevel_notify_inval_entry: drop one (parent, name) binding.
  void NotifyInvalEntry(const std::string& parent_path,
                        const std::string& name);
  // fuse_lowlevel_notify_inval_inode: drop cached attributes of one inode.
  void NotifyInvalInode(fs::InodeNum ino);
  // Drop everything (what a real unmount guarantees, paper §3.2).
  void DropCaches();

  // ---- introspection ------------------------------------------------------
  fs::FileSystem& filesystem() { return *fs_; }
  const fs::FileSystemPtr& filesystem_ptr() const { return fs_; }
  DentryCache& dcache() { return dcache_; }
  AttrCache& icache() { return icache_; }
  std::size_t open_fd_count() const { return fds_.size(); }

 private:
  struct FdRecord {
    fs::FileHandle handle;
    std::string path;
  };

  void Charge(SimClock::Nanos ns) {
    if (clock_ != nullptr) clock_->Advance(ns);
  }
  void ChargeSyscall() { Charge(options_.syscall_cost); }
  bool caches_on() const { return options_.enable_caches; }
  // Refreshes dcache/icache from a successful GetAttr.
  void CacheAttr(const std::string& path, const fs::InodeAttr& attr);
  void InvalidateAfterChange(const std::string& path);

  fs::FileSystemPtr fs_;
  SimClock* clock_;
  VfsOptions options_;
  DentryCache dcache_;
  AttrCache icache_;
  std::unordered_map<Fd, FdRecord> fds_;
  Fd next_fd_ = 3;  // 0/1/2 are taken, as tradition demands
};

}  // namespace mcfs::vfs

#include "vfs/cache.h"

#include "fs/path.h"

namespace mcfs::vfs {

std::optional<DentryCache::Entry> DentryCache::Lookup(
    const std::string& path) {
  auto it = entries_.find(path);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return it->second;
}

void DentryCache::InsertPositive(const std::string& path, fs::InodeNum ino) {
  entries_[path] = Entry{State::kPositive, ino};
}

void DentryCache::InsertNegative(const std::string& path) {
  entries_[path] = Entry{State::kNegative, fs::kInvalidInode};
}

void DentryCache::InvalidateEntry(const std::string& path) {
  stats_.invalidations += entries_.erase(path);
}

void DentryCache::InvalidateInode(fs::InodeNum ino) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.state == State::kPositive && it->second.ino == ino) {
      it = entries_.erase(it);
      ++stats_.invalidations;
    } else {
      ++it;
    }
  }
}

void DentryCache::InvalidateSubtree(const std::string& path) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first == path || fs::IsPathPrefix(path, it->first)) {
      it = entries_.erase(it);
      ++stats_.invalidations;
    } else {
      ++it;
    }
  }
}

void DentryCache::Clear() {
  stats_.invalidations += entries_.size();
  entries_.clear();
}

std::optional<fs::InodeAttr> AttrCache::Lookup(fs::InodeNum ino) {
  auto it = entries_.find(ino);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return it->second;
}

void AttrCache::Insert(const fs::InodeAttr& attr) {
  entries_[attr.ino] = attr;
}

void AttrCache::Invalidate(fs::InodeNum ino) {
  stats_.invalidations += entries_.erase(ino);
}

void AttrCache::Clear() {
  stats_.invalidations += entries_.size();
  entries_.clear();
}

}  // namespace mcfs::vfs

#include "vfs/vfs.h"

#include <utility>

#include "fs/path.h"

namespace mcfs::vfs {

Vfs::Vfs(fs::FileSystemPtr filesystem, SimClock* clock, VfsOptions options)
    : fs_(std::move(filesystem)), clock_(clock), options_(options) {}

Status Vfs::Mount() {
  Charge(options_.mount_cost);
  if (Status s = fs_->Mount(); !s.ok()) return s;
  // A fresh mount starts with cold caches — this is the coherence
  // guarantee the paper's remount workaround buys (§3.2).
  DropCaches();
  fds_.clear();
  return Status::Ok();
}

Status Vfs::Unmount() {
  Charge(options_.unmount_cost);
  if (Status s = fs_->Unmount(); !s.ok()) return s;
  DropCaches();
  fds_.clear();
  return Status::Ok();
}

void Vfs::DropCaches() {
  dcache_.Clear();
  icache_.Clear();
}

void Vfs::NotifyInvalEntry(const std::string& parent_path,
                           const std::string& name) {
  const std::string path =
      parent_path == "/" ? "/" + name : parent_path + "/" + name;
  dcache_.InvalidateEntry(path);
}

void Vfs::NotifyInvalInode(fs::InodeNum ino) {
  icache_.Invalidate(ino);
  dcache_.InvalidateInode(ino);
}

void Vfs::CacheAttr(const std::string& path, const fs::InodeAttr& attr) {
  if (!caches_on()) return;
  dcache_.InsertPositive(path, attr.ino);
  icache_.Insert(attr);
}

void Vfs::InvalidateAfterChange(const std::string& path) {
  if (!caches_on()) return;
  if (auto entry = dcache_.Lookup(path);
      entry && entry->state == DentryCache::State::kPositive) {
    icache_.Invalidate(entry->ino);
  }
  dcache_.InvalidateSubtree(path);
  // The parent directory's size/mtime changed too.
  if (auto parent = dcache_.Lookup(fs::ParentPath(path));
      parent && parent->state == DentryCache::State::kPositive) {
    icache_.Invalidate(parent->ino);
  }
}

// ---------------------------------------------------------------------------
// Cache-mediated path operations

Result<fs::InodeAttr> Vfs::Stat(const std::string& path) {
  ChargeSyscall();
  if (caches_on()) {
    if (auto entry = dcache_.Lookup(path)) {
      if (entry->state == DentryCache::State::kNegative) {
        return Errno::kENOENT;  // answered from the (possibly stale) dcache
      }
      if (auto attr = icache_.Lookup(entry->ino)) return *attr;
    }
  }
  auto attr = fs_->GetAttr(path);
  if (attr.ok()) {
    CacheAttr(path, attr.value());
  } else if (attr.error() == Errno::kENOENT && caches_on()) {
    dcache_.InsertNegative(path);
  }
  return attr;
}

Status Vfs::Mkdir(const std::string& path, fs::Mode mode) {
  ChargeSyscall();
  if (caches_on()) {
    if (auto entry = dcache_.Lookup(path);
        entry && entry->state == DentryCache::State::kPositive) {
      // The kernel answers from the dcache without consulting the file
      // system — the exact mechanism behind the paper's second VeriFS1
      // bug ("claiming the directory existed — but in fact it did not").
      return Errno::kEEXIST;
    }
  }
  Status s = fs_->Mkdir(path, mode);
  if (s.ok()) InvalidateAfterChange(path);
  return s;
}

Status Vfs::Rmdir(const std::string& path) {
  ChargeSyscall();
  if (caches_on()) {
    if (auto entry = dcache_.Lookup(path);
        entry && entry->state == DentryCache::State::kNegative) {
      return Errno::kENOENT;
    }
  }
  Status s = fs_->Rmdir(path);
  if (s.ok()) {
    InvalidateAfterChange(path);
    if (caches_on()) dcache_.InsertNegative(path);
  }
  return s;
}

Status Vfs::Unlink(const std::string& path) {
  ChargeSyscall();
  if (caches_on()) {
    if (auto entry = dcache_.Lookup(path);
        entry && entry->state == DentryCache::State::kNegative) {
      return Errno::kENOENT;
    }
  }
  Status s = fs_->Unlink(path);
  if (s.ok()) {
    InvalidateAfterChange(path);
    if (caches_on()) dcache_.InsertNegative(path);
  }
  return s;
}

Result<std::vector<fs::DirEntry>> Vfs::GetDents(const std::string& path) {
  ChargeSyscall();
  if (caches_on()) {
    if (auto entry = dcache_.Lookup(path);
        entry && entry->state == DentryCache::State::kNegative) {
      return Errno::kENOENT;
    }
  }
  auto entries = fs_->ReadDir(path);
  if (entries.ok() && caches_on()) {
    // Readdir warms the dcache with child bindings, like the kernel's
    // readdirplus path — widening the staleness surface.
    for (const auto& e : entries.value()) {
      const std::string child =
          path == "/" ? "/" + e.name : path + "/" + e.name;
      dcache_.InsertPositive(child, e.ino);
    }
  }
  return entries;
}

Status Vfs::Rename(const std::string& from, const std::string& to) {
  ChargeSyscall();
  if (caches_on()) {
    if (auto entry = dcache_.Lookup(from);
        entry && entry->state == DentryCache::State::kNegative) {
      return Errno::kENOENT;
    }
  }
  Status s = fs_->Rename(from, to);
  if (s.ok()) {
    InvalidateAfterChange(from);
    InvalidateAfterChange(to);
    if (caches_on()) dcache_.InsertNegative(from);
  }
  return s;
}

Status Vfs::Link(const std::string& existing, const std::string& link) {
  ChargeSyscall();
  if (caches_on()) {
    if (auto entry = dcache_.Lookup(link);
        entry && entry->state == DentryCache::State::kPositive) {
      return Errno::kEEXIST;
    }
  }
  Status s = fs_->Link(existing, link);
  if (s.ok()) {
    InvalidateAfterChange(link);
    InvalidateAfterChange(existing);  // nlink changed
  }
  return s;
}

Status Vfs::Symlink(const std::string& target, const std::string& link) {
  ChargeSyscall();
  if (caches_on()) {
    if (auto entry = dcache_.Lookup(link);
        entry && entry->state == DentryCache::State::kPositive) {
      return Errno::kEEXIST;
    }
  }
  Status s = fs_->Symlink(target, link);
  if (s.ok()) InvalidateAfterChange(link);
  return s;
}

Result<std::string> Vfs::ReadLink(const std::string& path) {
  ChargeSyscall();
  if (caches_on()) {
    if (auto entry = dcache_.Lookup(path);
        entry && entry->state == DentryCache::State::kNegative) {
      return Errno::kENOENT;
    }
  }
  return fs_->ReadLink(path);
}

Status Vfs::Access(const std::string& path, std::uint32_t mode) {
  ChargeSyscall();
  if (caches_on()) {
    if (auto entry = dcache_.Lookup(path);
        entry && entry->state == DentryCache::State::kNegative) {
      return Errno::kENOENT;
    }
  }
  return fs_->Access(path, mode);
}

Status Vfs::Truncate(const std::string& path, std::uint64_t size) {
  ChargeSyscall();
  if (caches_on()) {
    if (auto entry = dcache_.Lookup(path);
        entry && entry->state == DentryCache::State::kNegative) {
      return Errno::kENOENT;
    }
  }
  Status s = fs_->Truncate(path, size);
  if (s.ok()) InvalidateAfterChange(path);
  return s;
}

Status Vfs::Chmod(const std::string& path, fs::Mode mode) {
  ChargeSyscall();
  Status s = fs_->Chmod(path, mode);
  if (s.ok()) InvalidateAfterChange(path);
  return s;
}

Status Vfs::Chown(const std::string& path, std::uint32_t uid,
                  std::uint32_t gid) {
  ChargeSyscall();
  Status s = fs_->Chown(path, uid, gid);
  if (s.ok()) InvalidateAfterChange(path);
  return s;
}

Result<fs::StatVfs> Vfs::StatFs() {
  ChargeSyscall();
  return fs_->StatFs();
}

Status Vfs::SetXattr(const std::string& path, const std::string& name,
                     ByteView value) {
  ChargeSyscall();
  return fs_->SetXattr(path, name, value);
}

Result<Bytes> Vfs::GetXattr(const std::string& path,
                            const std::string& name) {
  ChargeSyscall();
  return fs_->GetXattr(path, name);
}

Result<std::vector<std::string>> Vfs::ListXattr(const std::string& path) {
  ChargeSyscall();
  return fs_->ListXattr(path);
}

Status Vfs::RemoveXattr(const std::string& path, const std::string& name) {
  ChargeSyscall();
  return fs_->RemoveXattr(path, name);
}

// ---------------------------------------------------------------------------
// Descriptor I/O

Result<Fd> Vfs::Open(const std::string& path, std::uint32_t flags,
                     fs::Mode mode) {
  ChargeSyscall();
  if (caches_on()) {
    if (auto entry = dcache_.Lookup(path);
        entry && entry->state == DentryCache::State::kPositive &&
        (flags & fs::kCreate) && (flags & fs::kExcl)) {
      return Errno::kEEXIST;
    }
    if (auto entry = dcache_.Lookup(path);
        entry && entry->state == DentryCache::State::kNegative &&
        !(flags & fs::kCreate)) {
      return Errno::kENOENT;
    }
  }
  auto handle = fs_->Open(path, flags, mode);
  if (!handle.ok()) return handle.error();
  const Fd fd = next_fd_++;
  fds_[fd] = FdRecord{handle.value(), path};
  if (flags & (fs::kCreate | fs::kTrunc)) InvalidateAfterChange(path);
  return fd;
}

Status Vfs::Close(Fd fd) {
  ChargeSyscall();
  auto it = fds_.find(fd);
  if (it == fds_.end()) return Errno::kEBADF;
  Status s = fs_->Close(it->second.handle);
  fds_.erase(it);
  return s;
}

Result<Bytes> Vfs::Read(Fd fd, std::uint64_t offset, std::uint64_t size) {
  ChargeSyscall();
  auto it = fds_.find(fd);
  if (it == fds_.end()) return Errno::kEBADF;
  auto data = fs_->Read(it->second.handle, offset, size);
  if (data.ok() && caches_on()) {
    // Reads move atime; drop the cached attrs so stat refetches them
    // (the kernel maintains its cached atime the same way).
    if (auto entry = dcache_.Lookup(it->second.path);
        entry && entry->state == DentryCache::State::kPositive) {
      icache_.Invalidate(entry->ino);
    }
  }
  return data;
}

Result<std::uint64_t> Vfs::Write(Fd fd, std::uint64_t offset, ByteView data) {
  ChargeSyscall();
  auto it = fds_.find(fd);
  if (it == fds_.end()) return Errno::kEBADF;
  auto written = fs_->Write(it->second.handle, offset, data);
  if (written.ok()) {
    // Size/mtime changed; the cached attributes are stale.
    if (caches_on()) {
      if (auto entry = dcache_.Lookup(it->second.path);
          entry && entry->state == DentryCache::State::kPositive) {
        icache_.Invalidate(entry->ino);
      }
    }
  }
  return written;
}

Status Vfs::Fsync(Fd fd) {
  ChargeSyscall();
  auto it = fds_.find(fd);
  if (it == fds_.end()) return Errno::kEBADF;
  return fs_->Fsync(it->second.handle);
}

}  // namespace mcfs::vfs

// Kernel-style dentry and attribute caches.
//
// These are the in-memory structures that make restoring a file system's
// persistent state hazardous (paper §3.2): after the model checker rolls
// the disk back, "the dcache might contain a recently created directory,
// but the restored state might reflect a time before its creation." The
// caches deliberately serve hits without consulting the file system, so a
// stale entry produces exactly the spurious EEXIST/ENOENT behaviour the
// paper debugged (§6, second VeriFS1 bug).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "fs/types.h"

namespace mcfs::vfs {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t invalidations = 0;
};

// Path -> inode bindings, including negative ("does not exist") entries.
class DentryCache {
 public:
  enum class State { kPositive, kNegative };

  struct Entry {
    State state;
    fs::InodeNum ino;  // valid when positive
  };

  // nullopt = not cached; the caller must ask the file system.
  std::optional<Entry> Lookup(const std::string& path);

  void InsertPositive(const std::string& path, fs::InodeNum ino);
  void InsertNegative(const std::string& path);

  // Drops the entry for one path (FUSE notify_inval_entry analogue).
  void InvalidateEntry(const std::string& path);
  // Drops every positive entry bound to `ino`.
  void InvalidateInode(fs::InodeNum ino);
  // Drops the entry for `path` and everything beneath it (rename/rmdir).
  void InvalidateSubtree(const std::string& path);
  void Clear();

  std::size_t size() const { return entries_.size(); }
  const CacheStats& stats() const { return stats_; }

 private:
  std::unordered_map<std::string, Entry> entries_;
  CacheStats stats_;
};

// Inode -> attribute bindings (the icache half of the hazard).
class AttrCache {
 public:
  std::optional<fs::InodeAttr> Lookup(fs::InodeNum ino);
  void Insert(const fs::InodeAttr& attr);
  void Invalidate(fs::InodeNum ino);
  void Clear();

  std::size_t size() const { return entries_.size(); }
  const CacheStats& stats() const { return stats_; }

 private:
  std::unordered_map<fs::InodeNum, fs::InodeAttr> entries_;
  CacheStats stats_;
};

}  // namespace mcfs::vfs

#include "fuse/fuse_host.h"

#include <utility>

#include "fuse/fuse_proto.h"
#include "fuse/fuse_wire.h"

namespace mcfs::fuse {

FuseHost::FuseHost(fs::FileSystemPtr hosted, FuseChannel* channel)
    : hosted_(std::move(hosted)),
      checkpointable_(dynamic_cast<fs::CheckpointableFs*>(hosted_.get())),
      channel_(channel) {
  channel_->SetRequestHandler(
      [this](ByteView request) { return Handle(request); });
}

void FuseHost::InvalEntry(const std::string& parent_path,
                          const std::string& name) {
  ByteWriter w;
  w.PutU8(static_cast<std::uint8_t>(NotifyCode::kInvalEntry));
  w.PutString(parent_path);
  w.PutString(name);
  channel_->Notify(w.bytes());
}

void FuseHost::InvalInode(fs::InodeNum ino) {
  ByteWriter w;
  w.PutU8(static_cast<std::uint8_t>(NotifyCode::kInvalInode));
  w.PutU64(ino);
  channel_->Notify(w.bytes());
}

std::uint64_t FuseHost::EstimateResidentBytes() const {
  std::uint64_t bytes = 1 << 20;  // daemon text/heap baseline
  if (checkpointable_ != nullptr) bytes += checkpointable_->SnapshotBytes();
  return bytes;
}

Bytes FuseHost::ErrorReply(Errno err) {
  ByteWriter w;
  w.PutU32(static_cast<std::uint32_t>(err));
  return w.Take();
}

ByteWriter FuseHost::OkReply() {
  ByteWriter w;
  w.PutU32(static_cast<std::uint32_t>(Errno::kOk));
  return w;
}

Bytes FuseHost::Handle(ByteView request) {
  ByteReader r(request);
  const auto op = static_cast<Opcode>(r.GetU8());
  switch (op) {
    case Opcode::kInit: {
      Status s = hosted_->Mount();
      return s.ok() ? OkReply().Take() : ErrorReply(s.error());
    }
    case Opcode::kDestroy: {
      Status s = hosted_->Unmount();
      return s.ok() ? OkReply().Take() : ErrorReply(s.error());
    }
    case Opcode::kMkfs: {
      Status s = hosted_->Mkfs();
      return s.ok() ? OkReply().Take() : ErrorReply(s.error());
    }
    case Opcode::kGetAttr: {
      auto attr = hosted_->GetAttr(r.GetString());
      if (!attr.ok()) return ErrorReply(attr.error());
      ByteWriter w = OkReply();
      WriteAttr(w, attr.value());
      return w.Take();
    }
    case Opcode::kMkdir: {
      const std::string path = r.GetString();
      const auto mode = static_cast<fs::Mode>(r.GetU16());
      Status s = hosted_->Mkdir(path, mode);
      return s.ok() ? OkReply().Take() : ErrorReply(s.error());
    }
    case Opcode::kRmdir: {
      Status s = hosted_->Rmdir(r.GetString());
      return s.ok() ? OkReply().Take() : ErrorReply(s.error());
    }
    case Opcode::kUnlink: {
      Status s = hosted_->Unlink(r.GetString());
      return s.ok() ? OkReply().Take() : ErrorReply(s.error());
    }
    case Opcode::kReadDir: {
      auto entries = hosted_->ReadDir(r.GetString());
      if (!entries.ok()) return ErrorReply(entries.error());
      ByteWriter w = OkReply();
      w.PutU32(static_cast<std::uint32_t>(entries.value().size()));
      for (const auto& e : entries.value()) {
        w.PutString(e.name);
        w.PutU64(e.ino);
        w.PutU8(static_cast<std::uint8_t>(e.type));
      }
      return w.Take();
    }
    case Opcode::kOpen: {
      const std::string path = r.GetString();
      const std::uint32_t flags = r.GetU32();
      const auto mode = static_cast<fs::Mode>(r.GetU16());
      auto handle = hosted_->Open(path, flags, mode);
      if (!handle.ok()) return ErrorReply(handle.error());
      ByteWriter w = OkReply();
      w.PutU64(handle.value());
      return w.Take();
    }
    case Opcode::kClose: {
      Status s = hosted_->Close(r.GetU64());
      return s.ok() ? OkReply().Take() : ErrorReply(s.error());
    }
    case Opcode::kRead: {
      const fs::FileHandle fh = r.GetU64();
      const std::uint64_t offset = r.GetU64();
      const std::uint64_t size = r.GetU64();
      auto data = hosted_->Read(fh, offset, size);
      if (!data.ok()) return ErrorReply(data.error());
      ByteWriter w = OkReply();
      w.PutBlob(data.value());
      return w.Take();
    }
    case Opcode::kWrite: {
      const fs::FileHandle fh = r.GetU64();
      const std::uint64_t offset = r.GetU64();
      const Bytes data = r.GetBlob();
      auto written = hosted_->Write(fh, offset, data);
      if (!written.ok()) return ErrorReply(written.error());
      ByteWriter w = OkReply();
      w.PutU64(written.value());
      return w.Take();
    }
    case Opcode::kTruncate: {
      const std::string path = r.GetString();
      const std::uint64_t size = r.GetU64();
      Status s = hosted_->Truncate(path, size);
      return s.ok() ? OkReply().Take() : ErrorReply(s.error());
    }
    case Opcode::kFsync: {
      Status s = hosted_->Fsync(r.GetU64());
      return s.ok() ? OkReply().Take() : ErrorReply(s.error());
    }
    case Opcode::kChmod: {
      const std::string path = r.GetString();
      const auto mode = static_cast<fs::Mode>(r.GetU16());
      Status s = hosted_->Chmod(path, mode);
      return s.ok() ? OkReply().Take() : ErrorReply(s.error());
    }
    case Opcode::kChown: {
      const std::string path = r.GetString();
      const std::uint32_t uid = r.GetU32();
      const std::uint32_t gid = r.GetU32();
      Status s = hosted_->Chown(path, uid, gid);
      return s.ok() ? OkReply().Take() : ErrorReply(s.error());
    }
    case Opcode::kStatFs: {
      auto sv = hosted_->StatFs();
      if (!sv.ok()) return ErrorReply(sv.error());
      ByteWriter w = OkReply();
      WriteStatVfs(w, sv.value());
      return w.Take();
    }
    case Opcode::kRename: {
      const std::string from = r.GetString();
      const std::string to = r.GetString();
      Status s = hosted_->Rename(from, to);
      return s.ok() ? OkReply().Take() : ErrorReply(s.error());
    }
    case Opcode::kLink: {
      const std::string existing = r.GetString();
      const std::string link = r.GetString();
      Status s = hosted_->Link(existing, link);
      return s.ok() ? OkReply().Take() : ErrorReply(s.error());
    }
    case Opcode::kSymlink: {
      const std::string target = r.GetString();
      const std::string link = r.GetString();
      Status s = hosted_->Symlink(target, link);
      return s.ok() ? OkReply().Take() : ErrorReply(s.error());
    }
    case Opcode::kReadLink: {
      auto target = hosted_->ReadLink(r.GetString());
      if (!target.ok()) return ErrorReply(target.error());
      ByteWriter w = OkReply();
      w.PutString(target.value());
      return w.Take();
    }
    case Opcode::kAccess: {
      const std::string path = r.GetString();
      const std::uint32_t mode = r.GetU32();
      Status s = hosted_->Access(path, mode);
      return s.ok() ? OkReply().Take() : ErrorReply(s.error());
    }
    case Opcode::kSetXattr: {
      const std::string path = r.GetString();
      const std::string name = r.GetString();
      const Bytes value = r.GetBlob();
      Status s = hosted_->SetXattr(path, name, value);
      return s.ok() ? OkReply().Take() : ErrorReply(s.error());
    }
    case Opcode::kGetXattr: {
      const std::string path = r.GetString();
      const std::string name = r.GetString();
      auto value = hosted_->GetXattr(path, name);
      if (!value.ok()) return ErrorReply(value.error());
      ByteWriter w = OkReply();
      w.PutBlob(value.value());
      return w.Take();
    }
    case Opcode::kListXattr: {
      auto names = hosted_->ListXattr(r.GetString());
      if (!names.ok()) return ErrorReply(names.error());
      ByteWriter w = OkReply();
      w.PutU32(static_cast<std::uint32_t>(names.value().size()));
      for (const auto& name : names.value()) w.PutString(name);
      return w.Take();
    }
    case Opcode::kRemoveXattr: {
      const std::string path = r.GetString();
      const std::string name = r.GetString();
      Status s = hosted_->RemoveXattr(path, name);
      return s.ok() ? OkReply().Take() : ErrorReply(s.error());
    }
    case Opcode::kSupports: {
      const auto feature = static_cast<fs::FsFeature>(r.GetU8());
      ByteWriter w = OkReply();
      w.PutU8(hosted_->Supports(feature) ? 1 : 0);
      return w.Take();
    }
    case Opcode::kIoctlCheckpoint: {
      if (checkpointable_ == nullptr) return ErrorReply(Errno::kENOTSUP);
      Status s = checkpointable_->IoctlCheckpoint(r.GetU64());
      return s.ok() ? OkReply().Take() : ErrorReply(s.error());
    }
    case Opcode::kIoctlRestore: {
      if (checkpointable_ == nullptr) return ErrorReply(Errno::kENOTSUP);
      Status s = checkpointable_->IoctlRestore(r.GetU64());
      return s.ok() ? OkReply().Take() : ErrorReply(s.error());
    }
    case Opcode::kIoctlDiscard: {
      if (checkpointable_ == nullptr) return ErrorReply(Errno::kENOTSUP);
      Status s = checkpointable_->IoctlDiscard(r.GetU64());
      return s.ok() ? OkReply().Take() : ErrorReply(s.error());
    }
    case Opcode::kCheckpointHandle: {
      if (checkpointable_ == nullptr) return ErrorReply(Errno::kENOTSUP);
      auto id = checkpointable_->Checkpoint();
      if (!id.ok()) return ErrorReply(id.error());
      ByteWriter w = OkReply();
      w.PutU64(id.value());
      return w.Take();
    }
    case Opcode::kRestoreHandle: {
      if (checkpointable_ == nullptr) return ErrorReply(Errno::kENOTSUP);
      Status s = checkpointable_->Restore(r.GetU64());
      return s.ok() ? OkReply().Take() : ErrorReply(s.error());
    }
    case Opcode::kDiscardHandle: {
      if (checkpointable_ == nullptr) return ErrorReply(Errno::kENOTSUP);
      Status s = checkpointable_->Discard(r.GetU64());
      return s.ok() ? OkReply().Take() : ErrorReply(s.error());
    }
    case Opcode::kSnapshotStats: {
      if (checkpointable_ == nullptr) return ErrorReply(Errno::kENOTSUP);
      const fs::SnapshotStats stats = checkpointable_->Stats();
      ByteWriter w = OkReply();
      w.PutU64(stats.count);
      w.PutU64(stats.total_bytes);
      w.PutU64(stats.shared_bytes);
      w.PutU64(stats.exclusive_bytes);
      return w.Take();
    }
  }
  return ErrorReply(Errno::kEINVAL);
}

}  // namespace mcfs::fuse

// The kernel side of the FUSE pair: a FileSystem facade that marshals
// every operation through the /dev/fuse channel to the user-space host.
// This is what a Vfs mounts when the file system under test is FUSE-based
// (paper Figure 1, middle column).
//
// Reverse notifications from the host (cache invalidations emitted by
// VeriFS restores) are decoded here and forwarded to handlers installed
// by the Vfs owner.
#pragma once

#include <functional>

#include "fs/checkpointable.h"
#include "fs/filesystem.h"
#include "fuse/fuse_channel.h"

namespace mcfs::fuse {

class FuseClientFs final : public fs::FileSystem,
                           public fs::CheckpointableFs {
 public:
  using InvalEntryHandler =
      std::function<void(const std::string& parent, const std::string& name)>;
  using InvalInodeHandler = std::function<void(fs::InodeNum ino)>;

  explicit FuseClientFs(FuseChannel* channel);

  // Install receivers for host-initiated invalidations (typically bound
  // to Vfs::NotifyInvalEntry / Vfs::NotifyInvalInode).
  void SetInvalEntryHandler(InvalEntryHandler handler);
  void SetInvalInodeHandler(InvalInodeHandler handler);

  // FileSystem.
  Status Mkfs() override;
  Status Mount() override;
  Status Unmount() override;
  bool IsMounted() const override { return mounted_; }

  Result<fs::InodeAttr> GetAttr(const std::string& path) override;
  Status Mkdir(const std::string& path, fs::Mode mode) override;
  Status Rmdir(const std::string& path) override;
  Status Unlink(const std::string& path) override;
  Result<std::vector<fs::DirEntry>> ReadDir(const std::string& path) override;

  Result<fs::FileHandle> Open(const std::string& path, std::uint32_t flags,
                              fs::Mode mode) override;
  Status Close(fs::FileHandle fh) override;
  Result<Bytes> Read(fs::FileHandle fh, std::uint64_t offset,
                     std::uint64_t size) override;
  Result<std::uint64_t> Write(fs::FileHandle fh, std::uint64_t offset,
                              ByteView data) override;
  Status Truncate(const std::string& path, std::uint64_t size) override;
  Status Fsync(fs::FileHandle fh) override;

  Status Chmod(const std::string& path, fs::Mode mode) override;
  Status Chown(const std::string& path, std::uint32_t uid,
               std::uint32_t gid) override;
  Result<fs::StatVfs> StatFs() override;

  bool Supports(fs::FsFeature feature) const override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Link(const std::string& existing, const std::string& link) override;
  Status Symlink(const std::string& target, const std::string& link) override;
  Result<std::string> ReadLink(const std::string& path) override;
  Status Access(const std::string& path, std::uint32_t mode) override;
  Status SetXattr(const std::string& path, const std::string& name,
                  ByteView value) override;
  Result<Bytes> GetXattr(const std::string& path,
                         const std::string& name) override;
  Result<std::vector<std::string>> ListXattr(const std::string& path) override;
  Status RemoveXattr(const std::string& path, const std::string& name) override;

  std::string TypeName() const override { return "fuse"; }

  // CheckpointableFs handle surface — forwarded over dedicated opcodes;
  // the daemon-side pool allocates the SnapshotIds.
  Result<fs::SnapshotId> Checkpoint() override;
  Status Restore(fs::SnapshotId id) override;
  Status Discard(fs::SnapshotId id) override;
  fs::SnapshotStats Stats() const override;

  // Legacy keyed form — forwarded verbatim as ioctls (paper §5) over the
  // original opcodes so recorded traces replay wire-identically; the
  // hosted file system's base-class shims own the key -> handle map.
  Status IoctlCheckpoint(std::uint64_t key) override;
  Status IoctlRestore(std::uint64_t key) override;
  Status IoctlDiscard(std::uint64_t key) override;

 private:
  Result<Bytes> Call(ByteView request) const;
  Status SimpleCall(ByteView request) const;

  FuseChannel* channel_;
  bool mounted_ = false;
  InvalEntryHandler inval_entry_;
  InvalInodeHandler inval_inode_;
};

}  // namespace mcfs::fuse

// The wire protocol spoken over the simulated /dev/fuse channel.
//
// Every FileSystem operation has an opcode; requests and replies are
// length-prefixed byte buffers built with ByteWriter/ByteReader. The
// point of modelling this at all (rather than calling the user-space FS
// directly) is fidelity to the paper's Figure 1: FUSE file systems live
// in a separate process, syscalls cross the kernel boundary as messages,
// and the kernel keeps its own caches that the user FS must explicitly
// invalidate.
#pragma once

#include <cstdint>

namespace mcfs::fuse {

enum class Opcode : std::uint8_t {
  kInit = 1,     // mount handshake
  kDestroy = 2,  // unmount
  kGetAttr = 3,
  kMkdir = 4,
  kRmdir = 5,
  kUnlink = 6,
  kReadDir = 7,
  kOpen = 8,
  kClose = 9,
  kRead = 10,
  kWrite = 11,
  kTruncate = 12,
  kFsync = 13,
  kChmod = 14,
  kChown = 15,
  kStatFs = 16,
  kRename = 17,
  kLink = 18,
  kSymlink = 19,
  kReadLink = 20,
  kAccess = 21,
  kSetXattr = 22,
  kGetXattr = 23,
  kListXattr = 24,
  kRemoveXattr = 25,
  kSupports = 26,
  // The paper's proposed APIs, carried as ioctls (§5). 40-42 are the
  // legacy keyed (consuming-restore) form, kept wire-compatible so
  // recorded traces replay unchanged.
  kIoctlCheckpoint = 40,
  kIoctlRestore = 41,
  kIoctlDiscard = 42,
  // Handle-based snapshot surface: checkpoint returns a daemon-allocated
  // fs::SnapshotId, restore/discard take one, stats reports the pool's
  // shared/exclusive byte accounting.
  kCheckpointHandle = 43,
  kRestoreHandle = 44,
  kDiscardHandle = 45,
  kSnapshotStats = 46,
  kMkfs = 50,
};

// Reverse (host -> kernel) notifications, mirroring
// fuse_lowlevel_notify_inval_entry / fuse_lowlevel_notify_inval_inode.
enum class NotifyCode : std::uint8_t {
  kInvalEntry = 1,
  kInvalInode = 2,
};

}  // namespace mcfs::fuse

#include "fuse/fuse_channel.h"

#include <utility>

namespace mcfs::fuse {

FuseChannel::FuseChannel(SimClock* clock, SimClock::Nanos crossing_cost,
                         SimClock::Nanos copy_cost_per_kb, bool char_device,
                         std::string endpoint)
    : clock_(clock),
      crossing_cost_(crossing_cost),
      copy_cost_per_kb_(copy_cost_per_kb),
      char_device_(char_device),
      endpoint_(std::move(endpoint)) {}

void FuseChannel::SetRequestHandler(RequestHandler handler) {
  request_handler_ = std::move(handler);
}

void FuseChannel::SetNotifyHandler(NotifyHandler handler) {
  notify_handler_ = std::move(handler);
}

void FuseChannel::Charge(std::uint64_t bytes) {
  if (clock_ == nullptr) return;
  clock_->Advance(crossing_cost_ +
                  (bytes + 1023) / 1024 * copy_cost_per_kb_);
}

Result<Bytes> FuseChannel::Transact(ByteView request) {
  if (!request_handler_) return Errno::kENXIO;  // connection gone
  ++stats_.requests;
  stats_.bytes_up += request.size();
  Charge(request.size());  // kernel -> user crossing
  Bytes reply = request_handler_(request);
  stats_.bytes_down += reply.size();
  Charge(reply.size());  // user -> kernel crossing
  return reply;
}

void FuseChannel::Notify(ByteView notification) {
  if (!notify_handler_) return;
  ++stats_.notifications;
  stats_.bytes_down += notification.size();
  Charge(notification.size());
  notify_handler_(notification);
}

}  // namespace mcfs::fuse

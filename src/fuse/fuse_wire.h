// Shared marshaling helpers for the FUSE wire protocol (attr and statfs
// records appear in several replies).
#pragma once

#include "fs/types.h"
#include "util/bytes.h"

namespace mcfs::fuse {

inline void WriteAttr(ByteWriter& w, const fs::InodeAttr& attr) {
  w.PutU64(attr.ino);
  w.PutU8(static_cast<std::uint8_t>(attr.type));
  w.PutU16(attr.mode);
  w.PutU32(attr.nlink);
  w.PutU32(attr.uid);
  w.PutU32(attr.gid);
  w.PutU64(attr.size);
  w.PutU64(attr.blocks);
  w.PutU64(attr.atime_ns);
  w.PutU64(attr.mtime_ns);
  w.PutU64(attr.ctime_ns);
}

inline fs::InodeAttr ReadAttr(ByteReader& r) {
  fs::InodeAttr attr;
  attr.ino = r.GetU64();
  attr.type = static_cast<fs::FileType>(r.GetU8());
  attr.mode = r.GetU16();
  attr.nlink = r.GetU32();
  attr.uid = r.GetU32();
  attr.gid = r.GetU32();
  attr.size = r.GetU64();
  attr.blocks = r.GetU64();
  attr.atime_ns = r.GetU64();
  attr.mtime_ns = r.GetU64();
  attr.ctime_ns = r.GetU64();
  return attr;
}

inline void WriteStatVfs(ByteWriter& w, const fs::StatVfs& sv) {
  w.PutU64(sv.block_size);
  w.PutU64(sv.total_bytes);
  w.PutU64(sv.free_bytes);
  w.PutU64(sv.total_inodes);
  w.PutU64(sv.free_inodes);
}

inline fs::StatVfs ReadStatVfs(ByteReader& r) {
  fs::StatVfs sv;
  sv.block_size = r.GetU64();
  sv.total_bytes = r.GetU64();
  sv.free_bytes = r.GetU64();
  sv.total_inodes = r.GetU64();
  sv.free_inodes = r.GetU64();
  return sv;
}

}  // namespace mcfs::fuse

// The simulated /dev/fuse character device.
//
// Requests flow kernel -> user space, replies flow back, and the host can
// push reverse notifications (cache invalidations) kernel-ward. Each
// crossing charges message latency to the SimClock — FUSE's "several
// user/kernel messages being passed" (paper §4) is a real cost the
// evaluation sees.
//
// The channel reports itself as an open character device, which is the
// precise reason CRIU refuses to snapshot FUSE file-system processes
// (paper §5).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "util/bytes.h"
#include "util/result.h"
#include "util/sim_clock.h"

namespace mcfs::fuse {

struct ChannelStats {
  std::uint64_t requests = 0;
  std::uint64_t notifications = 0;
  std::uint64_t bytes_up = 0;    // kernel -> user
  std::uint64_t bytes_down = 0;  // user -> kernel
};

class FuseChannel {
 public:
  using RequestHandler = std::function<Bytes(ByteView)>;
  using NotifyHandler = std::function<void(ByteView)>;

  // `clock` may be null. Latency is charged per crossing plus a per-KB
  // copy cost; the default crossing cost models a /dev/fuse round trip
  // half (wakeup + context switch + copy_to_user).
  //
  // The same message machinery also carries socket transports (the
  // Ganesha-style NFS server in src/nfs uses one): pass
  // char_device=false and a socket-ish endpoint name — that single bit
  // is what decides whether CRIU will checkpoint the daemon (paper §5).
  explicit FuseChannel(SimClock* clock,
                       SimClock::Nanos crossing_cost = 10'000,
                       SimClock::Nanos copy_cost_per_kb = 300,
                       bool char_device = true,
                       std::string endpoint = "/dev/fuse");

  // The user-space host installs its dispatcher here.
  void SetRequestHandler(RequestHandler handler);
  // The kernel side installs its notification receiver here.
  void SetNotifyHandler(NotifyHandler handler);

  // Kernel -> host round trip. ENXIO if no host is attached.
  Result<Bytes> Transact(ByteView request);

  // Host -> kernel one-way notification. Silently dropped if the kernel
  // side has not registered (matches libfuse behaviour when the kernel
  // connection is gone).
  void Notify(ByteView notification);

  // Transport identity — what CRIU inspects.
  bool is_char_device() const { return char_device_; }
  const char* device_path() const { return endpoint_.c_str(); }

  const ChannelStats& stats() const { return stats_; }

 private:
  void Charge(std::uint64_t bytes);

  SimClock* clock_;
  SimClock::Nanos crossing_cost_;
  SimClock::Nanos copy_cost_per_kb_;
  bool char_device_;
  std::string endpoint_;
  RequestHandler request_handler_;
  NotifyHandler notify_handler_;
  ChannelStats stats_;
};

}  // namespace mcfs::fuse

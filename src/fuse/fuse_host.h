// The user-space side of the FUSE pair: a "daemon process" hosting a
// FileSystem implementation (VeriFS in the paper) behind the /dev/fuse
// channel. It decodes requests, invokes the hosted file system, and
// encodes replies; it also implements KernelNotifier by pushing reverse
// notifications through the channel.
//
// For the CRIU experiment (paper §5) the host exposes the process
// metadata a checkpointing tool would inspect: it holds an open handle to
// a character device (the FUSE channel), which makes CRIU refuse it.
#pragma once

#include <memory>

#include "fs/checkpointable.h"
#include "fs/filesystem.h"
#include "fs/kernel_notifier.h"
#include "fuse/fuse_channel.h"

namespace mcfs::fuse {

class FuseHost final : public fs::KernelNotifier {
 public:
  // Attaches the host to `channel` as its request handler. The hosted
  // file system may additionally implement fs::CheckpointableFs, in which
  // case the ioctl opcodes are serviced.
  FuseHost(fs::FileSystemPtr hosted, FuseChannel* channel);

  // KernelNotifier (wired to hosted VeriFS instances so their restores
  // can invalidate kernel caches).
  void InvalEntry(const std::string& parent_path,
                  const std::string& name) override;
  void InvalInode(fs::InodeNum ino) override;

  // What a process snapshotter sees.
  bool holds_char_device_handle() const { return channel_ != nullptr; }
  const char* held_device_path() const { return channel_->device_path(); }
  // Approximate resident state of the daemon (for snapshot sizing).
  std::uint64_t EstimateResidentBytes() const;

  fs::FileSystem& hosted() { return *hosted_; }

 private:
  Bytes Handle(ByteView request);
  static Bytes ErrorReply(Errno err);
  static ByteWriter OkReply();

  fs::FileSystemPtr hosted_;
  fs::CheckpointableFs* checkpointable_;  // nullptr if not supported
  FuseChannel* channel_;
};

}  // namespace mcfs::fuse

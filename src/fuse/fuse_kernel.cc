#include "fuse/fuse_kernel.h"

#include <utility>

#include "fuse/fuse_proto.h"
#include "fuse/fuse_wire.h"

namespace mcfs::fuse {

namespace {

ByteWriter Request(Opcode op) {
  ByteWriter w;
  w.PutU8(static_cast<std::uint8_t>(op));
  return w;
}

// Decodes the leading status word; returns a reader positioned at the
// payload on success.
Result<ByteReader> DecodeReply(const Bytes& reply) {
  ByteReader r(reply);
  const auto err = static_cast<Errno>(r.GetU32());
  if (err != Errno::kOk) return err;
  return r;
}

}  // namespace

FuseClientFs::FuseClientFs(FuseChannel* channel) : channel_(channel) {
  channel_->SetNotifyHandler([this](ByteView notification) {
    ByteReader r(notification);
    const auto code = static_cast<NotifyCode>(r.GetU8());
    if (code == NotifyCode::kInvalEntry) {
      const std::string parent = r.GetString();
      const std::string name = r.GetString();
      if (inval_entry_) inval_entry_(parent, name);
    } else if (code == NotifyCode::kInvalInode) {
      const fs::InodeNum ino = r.GetU64();
      if (inval_inode_) inval_inode_(ino);
    }
  });
}

void FuseClientFs::SetInvalEntryHandler(InvalEntryHandler handler) {
  inval_entry_ = std::move(handler);
}

void FuseClientFs::SetInvalInodeHandler(InvalInodeHandler handler) {
  inval_inode_ = std::move(handler);
}

Result<Bytes> FuseClientFs::Call(ByteView request) const {
  return channel_->Transact(request);
}

Status FuseClientFs::SimpleCall(ByteView request) const {
  auto reply = Call(request);
  if (!reply.ok()) return reply.error();
  auto r = DecodeReply(reply.value());
  return r.ok() ? Status::Ok() : Status(r.error());
}

Status FuseClientFs::Mkfs() {
  return SimpleCall(Request(Opcode::kMkfs).bytes());
}

Status FuseClientFs::Mount() {
  if (mounted_) return Errno::kEBUSY;
  if (Status s = SimpleCall(Request(Opcode::kInit).bytes()); !s.ok()) {
    return s;
  }
  mounted_ = true;
  return Status::Ok();
}

Status FuseClientFs::Unmount() {
  if (!mounted_) return Errno::kEINVAL;
  if (Status s = SimpleCall(Request(Opcode::kDestroy).bytes()); !s.ok()) {
    return s;
  }
  mounted_ = false;
  return Status::Ok();
}

Result<fs::InodeAttr> FuseClientFs::GetAttr(const std::string& path) {
  ByteWriter w = Request(Opcode::kGetAttr);
  w.PutString(path);
  auto reply = Call(w.bytes());
  if (!reply.ok()) return reply.error();
  auto r = DecodeReply(reply.value());
  if (!r.ok()) return r.error();
  return ReadAttr(r.value());
}

Status FuseClientFs::Mkdir(const std::string& path, fs::Mode mode) {
  ByteWriter w = Request(Opcode::kMkdir);
  w.PutString(path);
  w.PutU16(mode);
  return SimpleCall(w.bytes());
}

Status FuseClientFs::Rmdir(const std::string& path) {
  ByteWriter w = Request(Opcode::kRmdir);
  w.PutString(path);
  return SimpleCall(w.bytes());
}

Status FuseClientFs::Unlink(const std::string& path) {
  ByteWriter w = Request(Opcode::kUnlink);
  w.PutString(path);
  return SimpleCall(w.bytes());
}

Result<std::vector<fs::DirEntry>> FuseClientFs::ReadDir(
    const std::string& path) {
  ByteWriter w = Request(Opcode::kReadDir);
  w.PutString(path);
  auto reply = Call(w.bytes());
  if (!reply.ok()) return reply.error();
  auto r = DecodeReply(reply.value());
  if (!r.ok()) return r.error();
  const std::uint32_t count = r.value().GetU32();
  std::vector<fs::DirEntry> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    fs::DirEntry e;
    e.name = r.value().GetString();
    e.ino = r.value().GetU64();
    e.type = static_cast<fs::FileType>(r.value().GetU8());
    out.push_back(std::move(e));
  }
  return out;
}

Result<fs::FileHandle> FuseClientFs::Open(const std::string& path,
                                          std::uint32_t flags,
                                          fs::Mode mode) {
  ByteWriter w = Request(Opcode::kOpen);
  w.PutString(path);
  w.PutU32(flags);
  w.PutU16(mode);
  auto reply = Call(w.bytes());
  if (!reply.ok()) return reply.error();
  auto r = DecodeReply(reply.value());
  if (!r.ok()) return r.error();
  return r.value().GetU64();
}

Status FuseClientFs::Close(fs::FileHandle fh) {
  ByteWriter w = Request(Opcode::kClose);
  w.PutU64(fh);
  return SimpleCall(w.bytes());
}

Result<Bytes> FuseClientFs::Read(fs::FileHandle fh, std::uint64_t offset,
                                 std::uint64_t size) {
  ByteWriter w = Request(Opcode::kRead);
  w.PutU64(fh);
  w.PutU64(offset);
  w.PutU64(size);
  auto reply = Call(w.bytes());
  if (!reply.ok()) return reply.error();
  auto r = DecodeReply(reply.value());
  if (!r.ok()) return r.error();
  return r.value().GetBlob();
}

Result<std::uint64_t> FuseClientFs::Write(fs::FileHandle fh,
                                          std::uint64_t offset,
                                          ByteView data) {
  ByteWriter w = Request(Opcode::kWrite);
  w.PutU64(fh);
  w.PutU64(offset);
  w.PutBlob(data);
  auto reply = Call(w.bytes());
  if (!reply.ok()) return reply.error();
  auto r = DecodeReply(reply.value());
  if (!r.ok()) return r.error();
  return r.value().GetU64();
}

Status FuseClientFs::Truncate(const std::string& path, std::uint64_t size) {
  ByteWriter w = Request(Opcode::kTruncate);
  w.PutString(path);
  w.PutU64(size);
  return SimpleCall(w.bytes());
}

Status FuseClientFs::Fsync(fs::FileHandle fh) {
  ByteWriter w = Request(Opcode::kFsync);
  w.PutU64(fh);
  return SimpleCall(w.bytes());
}

Status FuseClientFs::Chmod(const std::string& path, fs::Mode mode) {
  ByteWriter w = Request(Opcode::kChmod);
  w.PutString(path);
  w.PutU16(mode);
  return SimpleCall(w.bytes());
}

Status FuseClientFs::Chown(const std::string& path, std::uint32_t uid,
                           std::uint32_t gid) {
  ByteWriter w = Request(Opcode::kChown);
  w.PutString(path);
  w.PutU32(uid);
  w.PutU32(gid);
  return SimpleCall(w.bytes());
}

Result<fs::StatVfs> FuseClientFs::StatFs() {
  auto reply = Call(Request(Opcode::kStatFs).bytes());
  if (!reply.ok()) return reply.error();
  auto r = DecodeReply(reply.value());
  if (!r.ok()) return r.error();
  return ReadStatVfs(r.value());
}

bool FuseClientFs::Supports(fs::FsFeature feature) const {
  ByteWriter w = Request(Opcode::kSupports);
  w.PutU8(static_cast<std::uint8_t>(feature));
  auto reply = Call(w.bytes());
  if (!reply.ok()) return false;
  auto r = DecodeReply(reply.value());
  if (!r.ok()) return false;
  return r.value().GetU8() != 0;
}

Status FuseClientFs::Rename(const std::string& from, const std::string& to) {
  ByteWriter w = Request(Opcode::kRename);
  w.PutString(from);
  w.PutString(to);
  return SimpleCall(w.bytes());
}

Status FuseClientFs::Link(const std::string& existing,
                          const std::string& link) {
  ByteWriter w = Request(Opcode::kLink);
  w.PutString(existing);
  w.PutString(link);
  return SimpleCall(w.bytes());
}

Status FuseClientFs::Symlink(const std::string& target,
                             const std::string& link) {
  ByteWriter w = Request(Opcode::kSymlink);
  w.PutString(target);
  w.PutString(link);
  return SimpleCall(w.bytes());
}

Result<std::string> FuseClientFs::ReadLink(const std::string& path) {
  ByteWriter w = Request(Opcode::kReadLink);
  w.PutString(path);
  auto reply = Call(w.bytes());
  if (!reply.ok()) return reply.error();
  auto r = DecodeReply(reply.value());
  if (!r.ok()) return r.error();
  return r.value().GetString();
}

Status FuseClientFs::Access(const std::string& path, std::uint32_t mode) {
  ByteWriter w = Request(Opcode::kAccess);
  w.PutString(path);
  w.PutU32(mode);
  return SimpleCall(w.bytes());
}

Status FuseClientFs::SetXattr(const std::string& path,
                              const std::string& name, ByteView value) {
  ByteWriter w = Request(Opcode::kSetXattr);
  w.PutString(path);
  w.PutString(name);
  w.PutBlob(value);
  return SimpleCall(w.bytes());
}

Result<Bytes> FuseClientFs::GetXattr(const std::string& path,
                                     const std::string& name) {
  ByteWriter w = Request(Opcode::kGetXattr);
  w.PutString(path);
  w.PutString(name);
  auto reply = Call(w.bytes());
  if (!reply.ok()) return reply.error();
  auto r = DecodeReply(reply.value());
  if (!r.ok()) return r.error();
  return r.value().GetBlob();
}

Result<std::vector<std::string>> FuseClientFs::ListXattr(
    const std::string& path) {
  ByteWriter w = Request(Opcode::kListXattr);
  w.PutString(path);
  auto reply = Call(w.bytes());
  if (!reply.ok()) return reply.error();
  auto r = DecodeReply(reply.value());
  if (!r.ok()) return r.error();
  const std::uint32_t count = r.value().GetU32();
  std::vector<std::string> names;
  names.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    names.push_back(r.value().GetString());
  }
  return names;
}

Status FuseClientFs::RemoveXattr(const std::string& path,
                                 const std::string& name) {
  ByteWriter w = Request(Opcode::kRemoveXattr);
  w.PutString(path);
  w.PutString(name);
  return SimpleCall(w.bytes());
}

Result<fs::SnapshotId> FuseClientFs::Checkpoint() {
  ByteWriter w = Request(Opcode::kCheckpointHandle);
  auto reply = Call(w.bytes());
  if (!reply.ok()) return reply.error();
  auto r = DecodeReply(reply.value());
  if (!r.ok()) return r.error();
  return static_cast<fs::SnapshotId>(r.value().GetU64());
}

Status FuseClientFs::Restore(fs::SnapshotId id) {
  ByteWriter w = Request(Opcode::kRestoreHandle);
  w.PutU64(id);
  return SimpleCall(w.bytes());
}

Status FuseClientFs::Discard(fs::SnapshotId id) {
  ByteWriter w = Request(Opcode::kDiscardHandle);
  w.PutU64(id);
  return SimpleCall(w.bytes());
}

fs::SnapshotStats FuseClientFs::Stats() const {
  ByteWriter w = Request(Opcode::kSnapshotStats);
  auto reply = Call(w.bytes());
  if (!reply.ok()) return {};
  auto r = DecodeReply(reply.value());
  if (!r.ok()) return {};
  fs::SnapshotStats stats;
  stats.count = r.value().GetU64();
  stats.total_bytes = r.value().GetU64();
  stats.shared_bytes = r.value().GetU64();
  stats.exclusive_bytes = r.value().GetU64();
  return stats;
}

Status FuseClientFs::IoctlCheckpoint(std::uint64_t key) {
  ByteWriter w = Request(Opcode::kIoctlCheckpoint);
  w.PutU64(key);
  return SimpleCall(w.bytes());
}

Status FuseClientFs::IoctlRestore(std::uint64_t key) {
  ByteWriter w = Request(Opcode::kIoctlRestore);
  w.PutU64(key);
  return SimpleCall(w.bytes());
}

Status FuseClientFs::IoctlDiscard(std::uint64_t key) {
  ByteWriter w = Request(Opcode::kIoctlDiscard);
  w.PutU64(key);
  return SimpleCall(w.bytes());
}

}  // namespace mcfs::fuse

// Errno-style error codes and a Result<T> carrier used across every
// file-system facing interface in this library.
//
// The checker compares error codes across file systems, so the codes must be
// a closed, portable enum rather than the host's <cerrno> values.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <utility>

namespace mcfs {

// POSIX-flavoured error codes. Values are stable and independent of the
// host platform so that traces serialize portably.
enum class Errno : std::int32_t {
  kOk = 0,
  kEPERM = 1,
  kENOENT = 2,
  kEIO = 5,
  kENXIO = 6,
  kEBADF = 9,
  kEAGAIN = 11,
  kENOMEM = 12,
  kEACCES = 13,
  kEBUSY = 16,
  kEEXIST = 17,
  kEXDEV = 18,
  kENODEV = 19,
  kENOTDIR = 20,
  kEISDIR = 21,
  kEINVAL = 22,
  kENFILE = 23,
  kEMFILE = 24,
  kEFBIG = 27,
  kENOSPC = 28,
  kEROFS = 30,
  kEMLINK = 31,
  kERANGE = 34,
  kENAMETOOLONG = 36,
  kENOTEMPTY = 39,
  kELOOP = 40,
  kENODATA = 61,
  kEOVERFLOW = 75,
  kENOTSUP = 95,
  kEDQUOT = 122,
};

// Human-readable name for an error code (for logs and discrepancy reports).
constexpr std::string_view ErrnoName(Errno e) {
  switch (e) {
    case Errno::kOk: return "OK";
    case Errno::kEPERM: return "EPERM";
    case Errno::kENOENT: return "ENOENT";
    case Errno::kEIO: return "EIO";
    case Errno::kENXIO: return "ENXIO";
    case Errno::kEBADF: return "EBADF";
    case Errno::kEAGAIN: return "EAGAIN";
    case Errno::kENOMEM: return "ENOMEM";
    case Errno::kEACCES: return "EACCES";
    case Errno::kEBUSY: return "EBUSY";
    case Errno::kEEXIST: return "EEXIST";
    case Errno::kEXDEV: return "EXDEV";
    case Errno::kENODEV: return "ENODEV";
    case Errno::kENOTDIR: return "ENOTDIR";
    case Errno::kEISDIR: return "EISDIR";
    case Errno::kEINVAL: return "EINVAL";
    case Errno::kENFILE: return "ENFILE";
    case Errno::kEMFILE: return "EMFILE";
    case Errno::kEFBIG: return "EFBIG";
    case Errno::kENOSPC: return "ENOSPC";
    case Errno::kEROFS: return "EROFS";
    case Errno::kEMLINK: return "EMLINK";
    case Errno::kERANGE: return "ERANGE";
    case Errno::kENAMETOOLONG: return "ENAMETOOLONG";
    case Errno::kENOTEMPTY: return "ENOTEMPTY";
    case Errno::kELOOP: return "ELOOP";
    case Errno::kENODATA: return "ENODATA";
    case Errno::kEOVERFLOW: return "EOVERFLOW";
    case Errno::kENOTSUP: return "ENOTSUP";
    case Errno::kEDQUOT: return "EDQUOT";
  }
  return "E???";
}

// Result of an operation that yields a T on success or an Errno on failure.
// Deliberately minimal: the file-system interfaces need exactly
// success-with-value / failure-with-code, nothing more.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)), err_(Errno::kOk) {}  // NOLINT
  Result(Errno err) : err_(err) {}                                 // NOLINT

  bool ok() const { return err_ == Errno::kOk; }
  explicit operator bool() const { return ok(); }

  Errno error() const { return err_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  // value() if ok, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Errno err_;
};

// Result<void> analogue: just a status.
class [[nodiscard]] Status {
 public:
  Status() : err_(Errno::kOk) {}
  Status(Errno err) : err_(err) {}  // NOLINT

  static Status Ok() { return Status(); }

  bool ok() const { return err_ == Errno::kOk; }
  explicit operator bool() const { return ok(); }
  Errno error() const { return err_; }

  friend bool operator==(const Status&, const Status&) = default;

 private:
  Errno err_;
};

}  // namespace mcfs

// Simulated-time clock.
//
// The paper's Figure 2/3 results are dominated by device latency, remount
// cost, snapshot cost, and swap behaviour — all hardware effects. To make
// the reproduction deterministic and hardware-independent, every substrate
// charges simulated nanoseconds to a SimClock, and benches report simulated
// ops/s (see DESIGN.md §2).
#pragma once

#include <cstdint>

namespace mcfs {

class SimClock {
 public:
  using Nanos = std::uint64_t;

  Nanos now() const { return now_ns_; }

  void Advance(Nanos ns) { now_ns_ += ns; }

  void Reset() { now_ns_ = 0; }

  double seconds() const { return static_cast<double>(now_ns_) * 1e-9; }

 private:
  Nanos now_ns_ = 0;
};

// Convenience literals for latency constants.
constexpr SimClock::Nanos operator""_ns(unsigned long long v) { return v; }
constexpr SimClock::Nanos operator""_us(unsigned long long v) {
  return v * 1000ULL;
}
constexpr SimClock::Nanos operator""_ms(unsigned long long v) {
  return v * 1000'000ULL;
}
constexpr SimClock::Nanos operator""_s(unsigned long long v) {
  return v * 1000'000'000ULL;
}

}  // namespace mcfs

// MD5 (RFC 1321), implemented from scratch.
//
// MCFS's abstraction function (paper Algorithm 1) hashes file paths, data,
// and important metadata into a 128-bit digest used as the abstract state
// for visited-state matching. MD5 is not cryptographically secure, but the
// paper uses it for exactly this purpose; collisions are astronomically
// unlikely at model-checking scales and the digest is small enough to store
// per visited state.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/bytes.h"

namespace mcfs {

// 128-bit digest with value semantics; usable as a hash-table key.
struct Md5Digest {
  std::array<std::uint8_t, 16> bytes{};

  friend bool operator==(const Md5Digest&, const Md5Digest&) = default;
  friend auto operator<=>(const Md5Digest&, const Md5Digest&) = default;

  // Lower/upper 64 bits, for hash-table bucketing and bitstate addressing.
  std::uint64_t lo64() const;
  std::uint64_t hi64() const;

  std::string ToHex() const;
};

// Incremental MD5 context: Init / Update* / Final, mirroring md5_init /
// md5_update / get_md5_hash in the paper's Algorithm 1.
class Md5 {
 public:
  Md5();

  void Update(ByteView data);
  void Update(std::string_view s) { Update(AsBytes(s)); }
  void UpdateU64(std::uint64_t v);

  // Finalizes and returns the digest. The context must not be reused after.
  Md5Digest Final();

  // One-shot convenience.
  static Md5Digest Hash(ByteView data);
  static Md5Digest Hash(std::string_view s) { return Hash(AsBytes(s)); }

 private:
  void ProcessBlock(const std::uint8_t block[64]);

  std::array<std::uint32_t, 4> state_{};
  std::uint64_t bit_count_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  bool finalized_ = false;
};

}  // namespace mcfs

// std::hash support so Md5Digest can key unordered containers.
template <>
struct std::hash<mcfs::Md5Digest> {
  std::size_t operator()(const mcfs::Md5Digest& d) const noexcept {
    return static_cast<std::size_t>(d.lo64());
  }
};

// Minimal leveled logger. MCFS logs every executed operation with its
// parameters so discrepancies are replayable (paper §2: "Spin logs the
// precise sequence of operations, parameters, and starting and ending
// states"). Trace recording proper lives in mcfs/trace.h; this logger is
// for human-facing diagnostics.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace mcfs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Process-wide minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits a formatted line to stderr if `level` passes the threshold.
void LogMessage(LogLevel level, std::string_view msg);

namespace internal {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (level_ >= GetLogLevel()) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

}  // namespace mcfs

#define MCFS_LOG_DEBUG ::mcfs::internal::LogLine(::mcfs::LogLevel::kDebug)
#define MCFS_LOG_INFO ::mcfs::internal::LogLine(::mcfs::LogLevel::kInfo)
#define MCFS_LOG_WARN ::mcfs::internal::LogLine(::mcfs::LogLevel::kWarn)
#define MCFS_LOG_ERROR ::mcfs::internal::LogLine(::mcfs::LogLevel::kError)

// Deterministic pseudo-random number generation for the model checker.
//
// Exploration must be reproducible from a seed (Spin logs the seed so a
// counterexample can be replayed), so we use a fixed, well-known generator
// (xoshiro256**, seeded via SplitMix64) rather than std::default_random_engine,
// whose algorithm is implementation-defined.
#pragma once

#include <array>
#include <cstdint>

namespace mcfs {

// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256**: fast, high-quality, tiny state; the workhorse PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform value in [0, bound). bound == 0 returns 0.
  std::uint64_t Below(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Multiply-shift rejection-free mapping (slight bias is irrelevant for
    // state-space exploration and keeps replay deterministic and fast).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  // Uniform value in [lo, hi] inclusive.
  std::uint64_t Between(std::uint64_t lo, std::uint64_t hi) {
    const std::uint64_t span = hi - lo;
    // Full-range request: span + 1 would wrap to 0 and Below(0) would
    // pin the result to lo; every 64-bit value is valid, so draw raw.
    if (span == ~std::uint64_t{0}) return Next();
    return lo + Below(span + 1);
  }

  // Bernoulli draw with probability num/den. A zero denominator is a
  // checked no-draw: it returns false WITHOUT consuming generator state
  // (Below(0) short-circuits too), so a caller probing a degenerate
  // ratio does not perturb replay determinism — and num/0 must not read
  // as "certain" the way `Below(0) < num` (0 < num) would.
  bool Chance(std::uint64_t num, std::uint64_t den) {
    if (den == 0) return false;
    return Below(den) < num;
  }

  double NextDouble() {  // in [0,1)
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace mcfs

#include "util/log.h"

#include <atomic>
#include <cstdio>

namespace mcfs {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

constexpr const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }

LogLevel GetLogLevel() { return g_level.load(); }

void LogMessage(LogLevel level, std::string_view msg) {
  if (level < g_level.load() || msg.empty()) return;
  std::fprintf(stderr, "[mcfs %s] %.*s\n", LevelTag(level),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace mcfs

// Byte-buffer helpers: a growable output writer and a bounds-checked reader,
// used for file-system snapshots, on-disk structures, and trace serialization.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace mcfs {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

inline ByteView AsBytes(std::string_view s) {
  return ByteView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

inline std::string_view AsString(ByteView b) {
  return std::string_view(reinterpret_cast<const char*>(b.data()), b.size());
}

// Little-endian append-only writer.
class ByteWriter {
 public:
  void PutU8(std::uint8_t v) { buf_.push_back(v); }

  void PutU16(std::uint16_t v) { PutLe(v); }
  void PutU32(std::uint32_t v) { PutLe(v); }
  void PutU64(std::uint64_t v) { PutLe(v); }
  void PutI64(std::int64_t v) { PutLe(static_cast<std::uint64_t>(v)); }

  void PutBytes(ByteView b) { buf_.insert(buf_.end(), b.begin(), b.end()); }

  void PutString(std::string_view s) {
    PutU32(static_cast<std::uint32_t>(s.size()));
    PutBytes(AsBytes(s));
  }

  void PutBlob(ByteView b) {
    PutU64(b.size());
    PutBytes(b);
  }

  const Bytes& bytes() const { return buf_; }
  Bytes Take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void PutLe(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  Bytes buf_;
};

// Bounds-checked little-endian reader. Throws std::out_of_range on
// truncated input — snapshot/trace corruption is a programming error in
// this library, not an expected condition.
class ByteReader {
 public:
  explicit ByteReader(ByteView data) : data_(data) {}

  std::uint8_t GetU8() { return GetLe<std::uint8_t>(); }
  std::uint16_t GetU16() { return GetLe<std::uint16_t>(); }
  std::uint32_t GetU32() { return GetLe<std::uint32_t>(); }
  std::uint64_t GetU64() { return GetLe<std::uint64_t>(); }
  std::int64_t GetI64() { return static_cast<std::int64_t>(GetU64()); }

  ByteView GetBytes(std::size_t n) {
    Require(n);
    ByteView out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  std::string GetString() {
    const std::uint32_t n = GetU32();
    ByteView b = GetBytes(n);
    return std::string(AsString(b));
  }

  Bytes GetBlob() {
    const std::uint64_t n = GetU64();
    ByteView b = GetBytes(static_cast<std::size_t>(n));
    return Bytes(b.begin(), b.end());
  }

  bool AtEnd() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  template <typename T>
  T GetLe() {
    Require(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    return v;
  }

  void Require(std::size_t n) const {
    if (pos_ + n > data_.size()) {
      throw std::out_of_range("ByteReader: truncated input");
    }
  }

  ByteView data_;
  std::size_t pos_ = 0;
};

}  // namespace mcfs

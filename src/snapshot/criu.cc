#include "snapshot/criu.h"

namespace mcfs::snapshot {

CriuSnapshotter::CriuSnapshotter(SimClock* clock, CriuOptions options)
    : clock_(clock), options_(options) {}

Status CriuSnapshotter::Checkpoint(std::uint64_t key,
                                   const ProcessDescriptor& process) {
  const std::vector<std::string> devices = process.open_device_paths();
  if (!devices.empty()) {
    // "CRIU refused to checkpoint processes that have opened or mapped
    // any character or block device" (paper §5).
    refusals_.push_back(process.name() + " holds " + devices.front());
    return Errno::kEBUSY;
  }
  Bytes image = process.CaptureMemory();
  Charge(options_.fixed_cost +
         (image.size() + (1 << 20) - 1) / (1 << 20) *
             options_.dump_cost_per_mb);
  images_[key] = std::move(image);
  return Status::Ok();
}

Status CriuSnapshotter::Restore(std::uint64_t key,
                                ProcessDescriptor& process) {
  auto it = images_.find(key);
  if (it == images_.end()) return Errno::kENOENT;
  Charge(options_.fixed_cost +
         (it->second.size() + (1 << 20) - 1) / (1 << 20) *
             options_.restore_cost_per_mb);
  Status s = process.RestoreMemory(it->second);
  if (!s.ok()) return s;
  images_.erase(it);
  return Status::Ok();
}

Status CriuSnapshotter::Discard(std::uint64_t key) {
  return images_.erase(key) == 1 ? Status::Ok() : Status(Errno::kENOENT);
}

Result<std::uint64_t> CriuSnapshotter::ImageSize(std::uint64_t key) const {
  auto it = images_.find(key);
  if (it == images_.end()) return Errno::kENOENT;
  return it->second.size();
}

}  // namespace mcfs::snapshot

#include "snapshot/vm.h"

#include <utility>

namespace mcfs::snapshot {

VmSnapshotter::VmSnapshotter(SimClock* clock, VmOptions options)
    : clock_(clock), options_(options) {}

void VmSnapshotter::RegisterComponent(std::string name, CaptureFn capture,
                                      RestoreFn restore) {
  components_.push_back(
      Component{std::move(name), std::move(capture), std::move(restore)});
}

Status VmSnapshotter::Checkpoint(std::uint64_t key) {
  std::vector<Bytes> images;
  images.reserve(components_.size());
  std::uint64_t total = 0;
  for (const auto& component : components_) {
    images.push_back(component.capture());
    total += images.back().size();
  }
  Charge(options_.checkpoint_fixed +
         (total + (1 << 20) - 1) / (1 << 20) * options_.cost_per_mb);
  snapshots_[key] = std::move(images);
  return Status::Ok();
}

Status VmSnapshotter::Restore(std::uint64_t key) {
  auto it = snapshots_.find(key);
  if (it == snapshots_.end()) return Errno::kENOENT;
  if (it->second.size() != components_.size()) return Errno::kEINVAL;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    components_[i].restore(it->second[i]);
    total += it->second[i].size();
  }
  Charge(options_.restore_fixed +
         (total + (1 << 20) - 1) / (1 << 20) * options_.cost_per_mb);
  return Status::Ok();
}

Status VmSnapshotter::Discard(std::uint64_t key) {
  return snapshots_.erase(key) == 1 ? Status::Ok() : Status(Errno::kENOENT);
}

std::uint64_t VmSnapshotter::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [key, images] : snapshots_) {
    for (const auto& image : images) total += image.size();
  }
  return total;
}

}  // namespace mcfs::snapshot

// Whole-VM snapshotting (paper §5, "Virtual-machine snapshotting").
//
// A hypervisor can checkpoint/restore everything — kernel caches, user
// processes, disks — so it sidesteps the cache-incoherency problem
// entirely. But it is slow: the paper cites LightVM's ~30 ms checkpoint
// and ~20 ms restore for a *trivial* unikernel, which capped MCFS at
// 20-30 operations/s. VmSnapshotter charges those costs (plus a per-MB
// term for non-trivial images) so the snapshot-strategy bench reproduces
// the ceiling.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"
#include "util/sim_clock.h"

namespace mcfs::snapshot {

struct VmOptions {
  // LightVM's published numbers for a trivial VM (paper §5).
  SimClock::Nanos checkpoint_fixed = 30'000'000;  // 30 ms
  SimClock::Nanos restore_fixed = 20'000'000;     // 20 ms
  SimClock::Nanos cost_per_mb = 1'000'000;        // 1 ms/MB of image
};

// A "machine" is whatever set of components the caller registers: each
// contributes a capture/restore pair. Snapshots are atomic across all
// components — the property process- and FS-level snapshotting lack.
class VmSnapshotter {
 public:
  using CaptureFn = std::function<Bytes()>;
  using RestoreFn = std::function<void(ByteView)>;

  explicit VmSnapshotter(SimClock* clock, VmOptions options = {});

  void RegisterComponent(std::string name, CaptureFn capture,
                         RestoreFn restore);

  Status Checkpoint(std::uint64_t key);
  Status Restore(std::uint64_t key);  // non-consuming
  Status Discard(std::uint64_t key);

  std::uint64_t snapshot_count() const { return snapshots_.size(); }
  std::uint64_t total_bytes() const;

 private:
  struct Component {
    std::string name;
    CaptureFn capture;
    RestoreFn restore;
  };

  void Charge(SimClock::Nanos ns) {
    if (clock_ != nullptr) clock_->Advance(ns);
  }

  SimClock* clock_;
  VmOptions options_;
  std::vector<Component> components_;
  std::map<std::uint64_t, std::vector<Bytes>> snapshots_;
};

}  // namespace mcfs::snapshot

// CRIU-style process snapshotting (paper §5, "Process snapshotting").
//
// The paper tried CRIU to capture a user-space file system's in-memory
// state and hit its hard limitation: CRIU refuses to checkpoint processes
// that have opened or mapped character or block devices — and FUSE file
// systems by construction hold /dev/fuse open. It *could*, however,
// snapshot the NFS-Ganesha user-space server, which talks over sockets.
// This module reproduces both behaviours.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"
#include "util/sim_clock.h"

namespace mcfs::snapshot {

// What the snapshotter can see of a process.
class ProcessDescriptor {
 public:
  virtual ~ProcessDescriptor() = default;

  virtual std::string name() const = 0;

  // Paths of character/block devices the process holds open. Non-empty
  // means CRIU refuses.
  virtual std::vector<std::string> open_device_paths() const = 0;

  // Full memory-image capture/restore.
  virtual Bytes CaptureMemory() const = 0;
  virtual Status RestoreMemory(ByteView image) = 0;
};

struct CriuOptions {
  // Dump/restore costs: page-walking plus image I/O, per MB.
  SimClock::Nanos dump_cost_per_mb = 5'000'000;     // 5 ms/MB
  SimClock::Nanos restore_cost_per_mb = 3'000'000;  // 3 ms/MB
  SimClock::Nanos fixed_cost = 10'000'000;          // 10 ms fork/ptrace
};

class CriuSnapshotter {
 public:
  explicit CriuSnapshotter(SimClock* clock, CriuOptions options = {});

  // Dumps the process image under `key`. Fails with EBUSY if the process
  // holds any character or block device open (the FUSE case).
  Status Checkpoint(std::uint64_t key, const ProcessDescriptor& process);

  // Restores the image under `key` into `process` and discards it.
  Status Restore(std::uint64_t key, ProcessDescriptor& process);

  Status Discard(std::uint64_t key);

  // Size of the stored image under `key` (ENOENT if absent).
  Result<std::uint64_t> ImageSize(std::uint64_t key) const;

  std::uint64_t image_count() const { return images_.size(); }
  // The refusal log: device paths that blocked checkpoints.
  const std::vector<std::string>& refusals() const { return refusals_; }

 private:
  void Charge(SimClock::Nanos ns) {
    if (clock_ != nullptr) clock_->Advance(ns);
  }

  SimClock* clock_;
  CriuOptions options_;
  std::map<std::uint64_t, Bytes> images_;
  std::vector<std::string> refusals_;
};

}  // namespace mcfs::snapshot

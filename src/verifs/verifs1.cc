#include "verifs/verifs1.h"

#include <algorithm>
#include <cstring>

#include "fs/path.h"

namespace mcfs::verifs {
namespace {

// Canonical form of an op path ("/a//b" never occurs, but trailing
// slashes and the like must not desynchronize the invalidation log from
// the FS-canonical paths the legacy full walk emits).
std::string CanonicalPath(const std::string& path) {
  auto split = fs::SplitPath(path);
  if (!split.ok()) return path;
  return fs::JoinPath(split.value());
}

}  // namespace

Verifs1::Verifs1(Verifs1Options options) : options_(std::move(options)) {}

// ---------------------------------------------------------------------------
// Lifecycle

Status Verifs1::Mkfs() {
  if (mounted_) return Errno::kEBUSY;
  inodes_.Assign(options_.inode_count);
  Inode& root = inodes_.Mut(kRootIndex);
  root.used = true;
  root.type = fs::FileType::kDirectory;
  root.mode = 0755;
  root.uid = options_.identity.uid;
  root.gid = options_.identity.gid;
  root.atime_ns = root.mtime_ns = root.ctime_ns = NowNs();
  root.parent = kRootIndex;
  // Snapshots taken before this reformat can no longer be restored via
  // the O(dirty) log; force them onto the full-invalidation path.
  inval_log_.Overflow();
  return Status::Ok();
}

Status Verifs1::Mount() {
  if (mounted_) return Errno::kEBUSY;
  if (inodes_.size() == 0) return Errno::kEINVAL;  // never formatted
  mounted_ = true;
  return Status::Ok();
}

Status Verifs1::Unmount() {
  if (!mounted_) return Errno::kEINVAL;
  // A RAM file system's state lives in the daemon, which outlives the
  // kernel mount; only the open-handle table dies with the mount.
  mounted_ = false;
  open_files_.clear();
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Resolution helpers

Result<std::uint32_t> Verifs1::ResolveIndex(const std::string& path) const {
  if (!mounted_) return Errno::kEINVAL;
  auto split = fs::SplitPath(path);
  if (!split.ok()) return split.error();
  std::uint32_t index = kRootIndex;
  for (const auto& comp : split.value()) {
    const Inode& inode = inodes_.Get(index);
    if (inode.type != fs::FileType::kDirectory) return Errno::kENOTDIR;
    if (!fs::PermissionGranted(ToAttr(index, inode), options_.identity,
                               fs::kXOk)) {
      return Errno::kEACCES;
    }
    auto it = inode.children.find(comp);
    if (it == inode.children.end()) return Errno::kENOENT;
    index = it->second;
  }
  return index;
}

Result<Verifs1::ParentRef> Verifs1::ResolveParentRef(
    const std::string& path) const {
  auto split = fs::SplitPath(path);
  if (!split.ok()) return split.error();
  if (split.value().empty()) return Errno::kEINVAL;
  auto parent = ResolveIndex(fs::ParentPath(path));
  if (!parent.ok()) return parent.error();
  if (inodes_.Get(parent.value()).type != fs::FileType::kDirectory) {
    return Errno::kENOTDIR;
  }
  return ParentRef{parent.value(), split.value().back()};
}

Result<std::uint32_t> Verifs1::AllocInode() {
  for (std::uint32_t i = 0; i < inodes_.size(); ++i) {
    if (!inodes_.Get(i).used) return i;
  }
  return Errno::kENOSPC;  // the fixed-length array is full
}

std::uint32_t Verifs1::ComputeNlink(const Inode& inode) const {
  if (inode.type != fs::FileType::kDirectory) return 1;  // no hard links
  std::uint32_t n = 2;
  for (const auto& [name, child] : inode.children) {
    if (inodes_.Get(child).type == fs::FileType::kDirectory) ++n;
  }
  return n;
}

fs::InodeAttr Verifs1::ToAttr(std::uint32_t index, const Inode& inode) const {
  fs::InodeAttr attr;
  attr.ino = index + 1;  // inode numbers are 1-based externally
  attr.type = inode.type;
  attr.mode = inode.mode;
  attr.nlink = ComputeNlink(inode);
  attr.uid = inode.uid;
  attr.gid = inode.gid;
  attr.size = inode.type == fs::FileType::kDirectory
                  ? inode.children.size() * 32
                  : inode.size + (options_.bugs.stat_size_off_by_one ? 1 : 0);
  attr.atime_ns = inode.atime_ns;
  attr.mtime_ns = inode.mtime_ns;
  attr.ctime_ns = inode.ctime_ns;
  attr.blocks = (inode.size + 511) / 512;
  return attr;
}

// ---------------------------------------------------------------------------
// File sizing — where historical bug #1 lives

void Verifs1::SetFileSize(Inode& inode, std::uint64_t new_size,
                          bool zero_growth) {
  const std::uint64_t old_physical = inode.buf.size();
  if (new_size > old_physical) {
    inode.buf.resize(new_size);  // fresh bytes are zero either way
  }
  if (new_size > inode.size && zero_growth) {
    // Clear the reused region between the old logical end and the new
    // one. Bug #1 omitted exactly this memset, exposing bytes from a
    // previous, longer incarnation of the file (paper §6). Bytes past
    // the old physical end are zero already (fresh COW blocks), so only
    // the reused tail needs the wipe.
    const std::uint64_t zero_end = std::min(new_size, old_physical);
    if (zero_end > inode.size) inode.buf.Zero(inode.size, zero_end - inode.size);
  }
  inode.size = new_size;
  // Physical bytes are never reclaimed on shrink: the buffer is the
  // "contiguous memory buffer attached to each inode" of the paper.
}

// ---------------------------------------------------------------------------
// Namespace operations

Result<fs::InodeAttr> Verifs1::GetAttr(const std::string& path) {
  auto index = ResolveIndex(path);
  if (!index.ok()) return index.error();
  return ToAttr(index.value(), inodes_.Get(index.value()));
}

Status Verifs1::Mkdir(const std::string& path, fs::Mode mode) {
  auto parent = ResolveParentRef(path);
  if (!parent.ok()) return parent.error();
  const std::uint32_t parent_index = parent.value().parent_index;
  if (!fs::PermissionGranted(
          ToAttr(parent_index, inodes_.Get(parent_index)), options_.identity,
          fs::kWOk)) {
    return Errno::kEACCES;
  }
  if (inodes_.Get(parent_index).children.contains(parent.value().name)) {
    // Mutant: the error path scribbles on the PARENT before reporting —
    // the errno is right, the state one hop up is not.
    if (options_.bugs.mkdir_eexist_chowns_parent) {
      inodes_.Mut(parent_index).gid += 1;
      LogInode(parent_index);
    }
    // Mutant: the "already exists" case mapped to the wrong errno.
    return options_.bugs.mkdir_eexist_as_enoent ? Errno::kENOENT
                                                : Errno::kEEXIST;
  }
  auto slot = AllocInode();
  if (!slot.ok()) return slot.error();
  Inode& pnode = inodes_.Mut(parent_index);
  Inode& child = inodes_.Mut(slot.value());
  child = Inode{};
  child.used = true;
  child.type = fs::FileType::kDirectory;
  child.mode = static_cast<fs::Mode>(mode & fs::kModeMask);
  child.uid = options_.identity.uid;
  child.gid = options_.identity.gid;
  child.atime_ns = child.mtime_ns = child.ctime_ns = NowNs();
  child.parent = parent_index;
  pnode.children[parent.value().name] = slot.value();
  pnode.mtime_ns = NowNs();
  LogEntry(CanonicalPath(path), slot.value());
  LogInode(parent_index);
  return Status::Ok();
}

Status Verifs1::Rmdir(const std::string& path) {
  if (path == "/") return Errno::kEBUSY;
  auto parent = ResolveParentRef(path);
  if (!parent.ok()) return parent.error();
  const std::uint32_t parent_index = parent.value().parent_index;
  if (!fs::PermissionGranted(
          ToAttr(parent_index, inodes_.Get(parent_index)), options_.identity,
          fs::kWOk)) {
    return Errno::kEACCES;
  }
  const Inode& pread = inodes_.Get(parent_index);
  auto found = pread.children.find(parent.value().name);
  if (found == pread.children.end()) {
    // Dual mutant: the missing-child case mapped to ENOTDIR in BOTH
    // families, so the relative axis agrees on the wrong errno.
    return options_.bugs.dual_rmdir_missing_as_enotdir ? Errno::kENOTDIR
                                                       : Errno::kENOENT;
  }
  const std::uint32_t victim_index = found->second;
  if (inodes_.Get(victim_index).type != fs::FileType::kDirectory) {
    return Errno::kENOTDIR;
  }
  // Mutant: skip the emptiness check; the orphaned children leak.
  if (!inodes_.Get(victim_index).children.empty() &&
      !options_.bugs.rmdir_ignores_nonempty) {
    return Errno::kENOTEMPTY;
  }
  const std::string canonical = CanonicalPath(path);
  // With the mutant active a populated subtree vanishes: its paths must
  // enter the log (and every descendant inode) or a later O(dirty)
  // restore would leave stale cache entries for them.
  if (!inodes_.Get(victim_index).children.empty()) {
    std::vector<std::string> sub;
    CollectPathsRec(victim_index, canonical, &sub);
    for (const auto& p : sub) inval_log_.Append(p, fs::kInvalidInode);
  }
  Inode& pnode = inodes_.Mut(parent_index);
  inodes_.Mut(victim_index) = Inode{};  // marks the slot unused
  pnode.children.erase(parent.value().name);
  pnode.mtime_ns = NowNs();
  LogEntry(canonical, victim_index);
  LogInode(parent_index);
  return Status::Ok();
}

Status Verifs1::Unlink(const std::string& path) {
  auto parent = ResolveParentRef(path);
  if (!parent.ok()) return parent.error();
  const std::uint32_t parent_index = parent.value().parent_index;
  if (!fs::PermissionGranted(
          ToAttr(parent_index, inodes_.Get(parent_index)), options_.identity,
          fs::kWOk)) {
    return Errno::kEACCES;
  }
  const Inode& pread = inodes_.Get(parent_index);
  auto found = pread.children.find(parent.value().name);
  if (found == pread.children.end()) return Errno::kENOENT;
  const std::uint32_t victim_index = found->second;
  if (inodes_.Get(victim_index).type == fs::FileType::kDirectory) {
    return Errno::kEISDIR;
  }
  Inode& pnode = inodes_.Mut(parent_index);
  inodes_.Mut(victim_index) = Inode{};
  pnode.children.erase(parent.value().name);
  pnode.mtime_ns = NowNs();
  LogEntry(CanonicalPath(path), victim_index);
  LogInode(parent_index);
  return Status::Ok();
}

Result<std::vector<fs::DirEntry>> Verifs1::ReadDir(const std::string& path) {
  auto index = ResolveIndex(path);
  if (!index.ok()) return index.error();
  if (inodes_.Get(index.value()).type != fs::FileType::kDirectory) {
    return Errno::kENOTDIR;
  }
  if (!fs::PermissionGranted(
          ToAttr(index.value(), inodes_.Get(index.value())),
          options_.identity, fs::kROk)) {
    return Errno::kEACCES;
  }
  Inode& inode = inodes_.Mut(index.value());
  inode.atime_ns = NowNs();
  LogInode(index.value());  // atime moved: the cached attr is stale
  std::vector<fs::DirEntry> out;
  out.reserve(inode.children.size());
  for (const auto& [name, child] : inode.children) {
    out.push_back({name, static_cast<fs::InodeNum>(child + 1),
                   inodes_.Get(child).type});
  }
  return out;
}

// ---------------------------------------------------------------------------
// File I/O

Result<fs::FileHandle> Verifs1::Open(const std::string& path,
                                     std::uint32_t flags, fs::Mode mode) {
  if (!mounted_) return Errno::kEINVAL;
  auto index = ResolveIndex(path);
  std::uint32_t ino_index;
  if (!index.ok()) {
    if (index.error() != Errno::kENOENT || !(flags & fs::kCreate)) {
      return index.error();
    }
    auto parent = ResolveParentRef(path);
    if (!parent.ok()) return parent.error();
    const std::uint32_t parent_index = parent.value().parent_index;
    if (!fs::PermissionGranted(
            ToAttr(parent_index, inodes_.Get(parent_index)),
            options_.identity, fs::kWOk)) {
      return Errno::kEACCES;
    }
    auto slot = AllocInode();
    if (!slot.ok()) return slot.error();
    Inode& pnode = inodes_.Mut(parent_index);
    Inode& child = inodes_.Mut(slot.value());
    child = Inode{};
    child.used = true;
    child.type = fs::FileType::kRegular;
    child.mode = static_cast<fs::Mode>(mode & fs::kModeMask);
    child.uid = options_.identity.uid;
    child.gid = options_.identity.gid;
    child.atime_ns = child.mtime_ns = child.ctime_ns = NowNs();
    child.parent = parent_index;
    pnode.children[parent.value().name] = slot.value();
    pnode.mtime_ns = NowNs();
    LogEntry(CanonicalPath(path), slot.value());
    LogInode(parent_index);
    ino_index = slot.value();
  } else {
    if (flags & fs::kCreate && flags & fs::kExcl) return Errno::kEEXIST;
    ino_index = index.value();
    const Inode& inode = inodes_.Get(ino_index);
    const bool want_write =
        (flags & fs::kAccessModeMask) != fs::kRdOnly;
    if (inode.type == fs::FileType::kDirectory && want_write) {
      return Errno::kEISDIR;
    }
    const std::uint32_t want =
        want_write ? ((flags & fs::kAccessModeMask) == fs::kRdWr
                          ? (fs::kROk | fs::kWOk)
                          : fs::kWOk)
                   : fs::kROk;
    if (!fs::PermissionGranted(ToAttr(ino_index, inode), options_.identity,
                               want)) {
      return Errno::kEACCES;
    }
    if ((flags & fs::kTrunc) && want_write &&
        inode.type == fs::FileType::kRegular) {
      Inode& winode = inodes_.Mut(ino_index);
      SetFileSize(winode, 0, /*zero_growth=*/true);
      winode.mtime_ns = NowNs();
      LogInode(ino_index);
    }
  }
  const fs::FileHandle fh = next_handle_++;
  open_files_[fh] = OpenFile{ino_index, flags};
  return fh;
}

Status Verifs1::Close(fs::FileHandle fh) {
  if (!mounted_) return Errno::kEINVAL;
  return open_files_.erase(fh) == 1 ? Status::Ok() : Status(Errno::kEBADF);
}

Result<Bytes> Verifs1::Read(fs::FileHandle fh, std::uint64_t offset,
                            std::uint64_t size) {
  if (!mounted_) return Errno::kEINVAL;
  auto it = open_files_.find(fh);
  if (it == open_files_.end()) return Errno::kEBADF;
  if ((it->second.flags & fs::kAccessModeMask) == fs::kWrOnly) {
    return Errno::kEBADF;
  }
  Inode& inode = inodes_.Mut(it->second.ino_index);
  if (inode.type == fs::FileType::kDirectory) return Errno::kEISDIR;
  inode.atime_ns = NowNs();
  LogInode(it->second.ino_index);
  if (offset >= inode.size) return Bytes{};
  const std::uint64_t n = std::min(size, inode.size - offset);
  return inode.buf.ReadBytes(offset, n);
}

Result<std::uint64_t> Verifs1::Write(fs::FileHandle fh, std::uint64_t offset,
                                     ByteView data) {
  if (!mounted_) return Errno::kEINVAL;
  auto it = open_files_.find(fh);
  if (it == open_files_.end()) return Errno::kEBADF;
  if ((it->second.flags & fs::kAccessModeMask) == fs::kRdOnly) {
    return Errno::kEBADF;
  }
  Inode& inode = inodes_.Mut(it->second.ino_index);
  if (it->second.flags & fs::kAppend) offset = inode.size;

  if (offset > inode.size) {
    // Writing past EOF creates a hole; VeriFS1 (correctly) zeroes it.
    SetFileSize(inode, offset, /*zero_growth=*/true);
  }
  if (offset + data.size() > inode.buf.size()) {
    inode.buf.resize(offset + data.size());
  }
  inode.buf.Write(offset, data);
  if (offset + data.size() > inode.size) inode.size = offset + data.size();
  inode.mtime_ns = NowNs();
  inode.ctime_ns = inode.mtime_ns;
  LogInode(it->second.ino_index);
  return data.size();
}

Status Verifs1::Truncate(const std::string& path, std::uint64_t size) {
  auto index = ResolveIndex(path);
  if (!index.ok()) return index.error();
  if (inodes_.Get(index.value()).type == fs::FileType::kDirectory) {
    return Errno::kEISDIR;
  }
  if (!fs::PermissionGranted(
          ToAttr(index.value(), inodes_.Get(index.value())),
          options_.identity, fs::kWOk)) {
    return Errno::kEACCES;
  }
  // Mutant: shrinking truncate silently does nothing.
  if (options_.bugs.truncate_shrink_noop &&
      size < inodes_.Get(index.value()).size) {
    return Status::Ok();
  }
  Inode& inode = inodes_.Mut(index.value());
  // Historical bug #1: expansion without zeroing the reclaimed region.
  SetFileSize(inode, size,
              /*zero_growth=*/!options_.bugs.truncate_no_zero_on_expand);
  inode.mtime_ns = NowNs();
  inode.ctime_ns = inode.mtime_ns;
  LogInode(index.value());
  return Status::Ok();
}

Status Verifs1::Fsync(fs::FileHandle fh) {
  if (!mounted_) return Errno::kEINVAL;
  return open_files_.contains(fh) ? Status::Ok() : Status(Errno::kEBADF);
}

// ---------------------------------------------------------------------------
// Attributes

Status Verifs1::Chmod(const std::string& path, fs::Mode mode) {
  auto index = ResolveIndex(path);
  if (!index.ok()) return index.error();
  if (!options_.identity.IsRoot() &&
      options_.identity.uid != inodes_.Get(index.value()).uid) {
    return Errno::kEPERM;
  }
  Inode& inode = inodes_.Mut(index.value());
  // Mutant: report success but never store the new mode.
  if (!options_.bugs.chmod_ignores_mode) {
    // Dual mutant: the old group bits survive the chmod in BOTH families.
    inode.mode = options_.bugs.dual_chmod_keeps_group_bits
                     ? static_cast<fs::Mode>((mode & 0707) |
                                             (inode.mode & 0070))
                     : static_cast<fs::Mode>(mode & fs::kModeMask);
  }
  inode.ctime_ns = NowNs();
  LogInode(index.value());
  return Status::Ok();
}

Status Verifs1::Chown(const std::string& path, std::uint32_t uid,
                      std::uint32_t gid) {
  auto index = ResolveIndex(path);
  if (!index.ok()) return index.error();
  if (!options_.identity.IsRoot()) return Errno::kEPERM;
  Inode& inode = inodes_.Mut(index.value());
  inode.uid = uid;
  inode.gid = gid;
  inode.ctime_ns = NowNs();
  LogInode(index.value());
  return Status::Ok();
}

Result<fs::StatVfs> Verifs1::StatFs() {
  if (!mounted_) return Errno::kEINVAL;
  fs::StatVfs out;
  out.block_size = 4096;
  // "It also did not limit the amount of data that could be stored"
  // (paper §5): report a large fixed capacity.
  out.total_bytes = 1ull << 40;
  std::uint64_t used = 0;
  std::uint64_t used_inodes = 0;
  for (std::uint32_t i = 0; i < inodes_.size(); ++i) {
    const Inode& inode = inodes_.Get(i);
    if (inode.used) {
      ++used_inodes;
      used += inode.size;
    }
  }
  out.free_bytes = out.total_bytes - used;
  out.total_inodes = inodes_.size();
  out.free_inodes = inodes_.size() - used_inodes;
  return out;
}

bool Verifs1::Supports(fs::FsFeature feature) const {
  switch (feature) {
    case fs::FsFeature::kCheckpointRestore:
      return true;
    case fs::FsFeature::kRename:
    case fs::FsFeature::kHardLink:
    case fs::FsFeature::kSymlink:
    case fs::FsFeature::kAccess:
    case fs::FsFeature::kXattr:
      return false;  // VeriFS1's limited op set (paper §5)
  }
  return false;
}

// ---------------------------------------------------------------------------
// Checkpoint / restore (the paper's proposal)

Bytes Verifs1::SerializeState() const {
  ByteWriter w;
  w.PutU32(inodes_.size());
  for (std::uint32_t i = 0; i < inodes_.size(); ++i) {
    const Inode& inode = inodes_.Get(i);
    w.PutU8(inode.used ? 1 : 0);
    if (!inode.used) continue;
    w.PutU8(static_cast<std::uint8_t>(inode.type));
    w.PutU16(inode.mode);
    w.PutU32(inode.uid);
    w.PutU32(inode.gid);
    w.PutU64(inode.atime_ns);
    w.PutU64(inode.mtime_ns);
    w.PutU64(inode.ctime_ns);
    w.PutU64(inode.size);
    // The FULL physical buffer is captured, not just the logical bytes:
    // ioctl_CHECKPOINT "copies inode and file data into a snapshot pool"
    // (paper §5). Capturing less would mask stale-tail bugs (like
    // historical bug #1) whenever a restore intervened.
    w.PutBlob(inode.buf.ToBytes());
    w.PutU32(inode.parent);
    w.PutU32(static_cast<std::uint32_t>(inode.children.size()));
    for (const auto& [name, child] : inode.children) {
      w.PutString(name);
      w.PutU32(child);
    }
  }
  w.PutU64(op_counter_);
  return w.Take();
}

void Verifs1::DeserializeState(ByteView state) {
  ByteReader r(state);
  const std::uint32_t count = r.GetU32();
  inodes_.Assign(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (r.GetU8() == 0) continue;
    Inode& inode = inodes_.Mut(i);
    inode.used = true;
    inode.type = static_cast<fs::FileType>(r.GetU8());
    inode.mode = r.GetU16();
    inode.uid = r.GetU32();
    inode.gid = r.GetU32();
    inode.atime_ns = r.GetU64();
    inode.mtime_ns = r.GetU64();
    inode.ctime_ns = r.GetU64();
    inode.size = r.GetU64();
    inode.buf.Assign(r.GetBlob());  // full physical buffer, stale tail too
    inode.parent = r.GetU32();
    const std::uint32_t nchildren = r.GetU32();
    for (std::uint32_t c = 0; c < nchildren; ++c) {
      std::string name = r.GetString();
      inode.children[std::move(name)] = r.GetU32();
    }
  }
  op_counter_ = r.GetU64();
}

std::string Verifs1::PathOfIndex(std::uint32_t index) const {
  if (index == kRootIndex) return "/";
  std::vector<std::string> components;
  std::uint32_t cur = index;
  while (cur != kRootIndex) {
    const std::uint32_t parent = inodes_.Get(cur).parent;
    const Inode& pnode = inodes_.Get(parent);
    for (const auto& [name, child] : pnode.children) {
      if (child == cur) {
        components.push_back(name);
        break;
      }
    }
    cur = parent;
  }
  std::reverse(components.begin(), components.end());
  return fs::JoinPath(components);
}

void Verifs1::DropOneInodeAfterRestore() {
  for (std::uint32_t i = inodes_.size(); i > 1;) {
    --i;
    if (!inodes_.Get(i).used) continue;
    const std::string path = PathOfIndex(i);
    const std::uint32_t parent_index = inodes_.Get(i).parent;
    // Detach from the parent's namespace, then free the slot (children of
    // a dropped directory leak, like a lost inode would).
    Inode& parent = inodes_.Mut(parent_index);
    for (auto it = parent.children.begin(); it != parent.children.end();
         ++it) {
      if (it->second == i) {
        parent.children.erase(it);
        break;
      }
    }
    inodes_.Mut(i) = Inode{};
    // The vanished inode is a post-restore mutation like any other: log
    // it so forward restores and this restore's own invalidation see it.
    LogEntry(path, i);
    LogInode(parent_index);
    return;
  }
}

void Verifs1::CollectPathsRec(std::uint32_t index, const std::string& prefix,
                              std::vector<std::string>* out) const {
  const Inode& inode = inodes_.Get(index);
  for (const auto& [name, child] : inode.children) {
    const std::string path = prefix == "/" ? "/" + name : prefix + "/" + name;
    out->push_back(path);
    if (inodes_.Get(child).type == fs::FileType::kDirectory) {
      CollectPathsRec(child, path, out);
    }
  }
}

std::vector<std::string> Verifs1::CollectAllPaths() const {
  std::vector<std::string> out;
  if (inodes_.size() != 0) CollectPathsRec(kRootIndex, "/", &out);
  return out;
}

std::vector<fs::InodeNum> Verifs1::CollectUsedInos() const {
  std::vector<fs::InodeNum> inos;
  for (std::uint32_t i = 0; i < inodes_.size(); ++i) {
    if (inodes_.Get(i).used) inos.push_back(static_cast<fs::InodeNum>(i + 1));
  }
  return inos;
}

void Verifs1::InvalidateKernelCaches(
    const std::vector<std::string>& extra_paths,
    const std::vector<fs::InodeNum>& extra_inos) {
  if (notifier_ == nullptr) return;
  std::vector<std::string> paths = CollectAllPaths();
  paths.insert(paths.end(), extra_paths.begin(), extra_paths.end());
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
  for (const auto& path : paths) {
    notifier_->InvalEntry(fs::ParentPath(path), fs::Basename(path));
  }
  std::vector<fs::InodeNum> inos = CollectUsedInos();
  inos.insert(inos.end(), extra_inos.begin(), extra_inos.end());
  std::sort(inos.begin(), inos.end());
  inos.erase(std::unique(inos.begin(), inos.end()), inos.end());
  for (fs::InodeNum ino : inos) {
    notifier_->InvalInode(ino);
  }
}

void Verifs1::EmitInvalRecords(const std::vector<InvalRecord>& records) {
  if (notifier_ == nullptr) return;
  std::vector<std::string> paths;
  std::vector<fs::InodeNum> inos;
  for (const InvalRecord& rec : records) {
    if (!rec.path.empty()) paths.push_back(rec.path);
    if (rec.ino != fs::kInvalidInode) inos.push_back(rec.ino);
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
  for (const auto& path : paths) {
    notifier_->InvalEntry(fs::ParentPath(path), fs::Basename(path));
  }
  std::sort(inos.begin(), inos.end());
  inos.erase(std::unique(inos.begin(), inos.end()), inos.end());
  for (fs::InodeNum ino : inos) {
    notifier_->InvalInode(ino);
  }
}

void Verifs1::CompactInvalLog() {
  if (inval_log_.record_count() <= kMaxInvalRecords) return;
  std::uint64_t min_pos = inval_log_.End();
  for (const auto& [id, snap] : pool_.entries()) {
    if (!snap.deep) min_pos = std::min(min_pos, snap.inval_pos);
  }
  inval_log_.TrimBelow(min_pos);
  // Still over the cap: some snapshot is ancient. Overflow and let its
  // eventual restore take the full-invalidation path.
  if (inval_log_.record_count() > kMaxInvalRecords) inval_log_.Overflow();
}

Result<fs::SnapshotId> Verifs1::Checkpoint() {
  if (!mounted_) return Errno::kEINVAL;
  CompactInvalLog();
  // Lock, capture, unlock (paper §5). Single-threaded here, so "lock"
  // is implicit. COW capture is O(#chunks) pointer copies.
  Snapshot snap;
  if (options_.cow_snapshots) {
    snap.root = inodes_.Snapshot();
    snap.op_counter = op_counter_;
    snap.inval_pos = inval_log_.End();
  } else {
    snap.deep = true;
    snap.deep_image = SerializeState();
  }
  return pool_.Add(std::move(snap));
}

Status Verifs1::Restore(fs::SnapshotId id) {
  if (!mounted_) return Errno::kEINVAL;
  const Snapshot* snap = pool_.Find(id);
  if (snap == nullptr) return Errno::kENOENT;

  if (snap->deep || !inval_log_.Covers(snap->inval_pos)) {
    // Full-state path: deep-copy snapshots, or COW snapshots whose log
    // prefix was trimmed/overflowed. Remember the namespace that is
    // about to disappear: its entries and inodes must be invalidated in
    // the kernel too.
    std::vector<std::string> pre_paths = CollectAllPaths();
    std::vector<fs::InodeNum> pre_inos = CollectUsedInos();
    if (snap->deep) {
      DeserializeState(snap->deep_image);
    } else {
      inodes_.Restore(snap->root);
      op_counter_ = snap->op_counter;
    }
    if (options_.bugs.restore_skips_one_inode) DropOneInodeAfterRestore();
    open_files_.clear();  // handles do not survive a state rollback
    // This rollback is untracked, so positions before it can no longer
    // bound their dirty set; every older snapshot falls back here too.
    inval_log_.Overflow();
    if (!options_.bugs.skip_cache_invalidation_on_restore) {
      // The fix for historical bug #2: notify the kernel so its dentry
      // and inode caches drop entries from the abandoned timeline.
      InvalidateKernelCaches(pre_paths, pre_inos);
    }
    return Status::Ok();
  }

  // O(dirty) path: the records written since the snapshot was taken are
  // exactly where the abandoned timeline and the restored one differ.
  std::vector<InvalRecord> tail = inval_log_.Since(snap->inval_pos);
  DedupInvalRecords(tail);
  inodes_.Restore(snap->root);
  op_counter_ = snap->op_counter;
  open_files_.clear();
  if (options_.bugs.restore_skips_one_inode) DropOneInodeAfterRestore();
  // Re-log the undone mutations: a later restore FORWARD to a snapshot
  // taken on the abandoned branch must still invalidate them. With no
  // live snapshot positioned after this one, no such forward restore
  // can happen, and skipping the re-append keeps the log flat across
  // a backtracking walk's op/restore/op/restore bouncing.
  if (AnyCowSnapshotAfter(pool_.entries(), snap->inval_pos)) {
    inval_log_.ReAppend(tail);
    CompactInvalLog();
  } else {
    // No one can restore forward past this position: rewind the log to
    // it so repeated bounces off one snapshot stay O(dirty).
    inval_log_.TruncateTo(snap->inval_pos);
  }
  if (!options_.bugs.skip_cache_invalidation_on_restore) {
    EmitInvalRecords(tail);
  }
  return Status::Ok();
}

Status Verifs1::Discard(fs::SnapshotId id) {
  Status s = pool_.Discard(id);
  if (s.ok()) CompactInvalLog();
  return s;
}

fs::SnapshotStats Verifs1::Stats() const {
  return ComputeSnapshotStats<Inode>(
      pool_.entries(), inodes_.Snapshot(), [](const Inode& inode) {
        std::uint64_t extra = 0;
        for (const auto& [name, child] : inode.children) {
          extra += name.size() + 32;  // map-node overhead estimate
        }
        return extra;
      });
}

void Verifs1::ImportState(ByteView state) {
  std::vector<std::string> pre_paths = CollectAllPaths();
  std::vector<fs::InodeNum> pre_inos = CollectUsedInos();
  DeserializeState(state);
  open_files_.clear();
  inval_log_.Overflow();  // untracked rollback, same as a deep restore
  if (!options_.bugs.skip_cache_invalidation_on_restore) {
    InvalidateKernelCaches(pre_paths, pre_inos);
  }
}

}  // namespace mcfs::verifs

// Structurally-shared (copy-on-write) state for the VeriFS family.
//
// The paper's ioctl_CHECKPOINT originally deep-copied the whole inode
// table and every data byte; since incremental abstraction (PR 4) made
// hashing O(dirty), that copy was the per-step cost floor of deep DFS.
// Here state becomes a persistent structure:
//
//   * file data lives in fixed-size refcounted blocks (CowBuffer),
//   * the inode table is split into refcounted chunks (CowTable),
//   * a snapshot is a copy of the chunk-pointer vector — O(#chunks)
//     pointer copies, no data copied (effectively O(1)),
//   * a mutation clones only the chunk/block it writes (O(dirty)),
//   * restore swaps the root back in.
//
// Sharing is tracked by std::shared_ptr use counts: a chunk or block
// reachable from any snapshot root has use_count > 1, so Mut() clones
// before writing and snapshot contents are immutable by construction.
// Discarding a snapshot drops its root; unshared nodes free themselves.
//
// The invalidation log (InvalLog) makes restore-time kernel-cache
// invalidation O(dirty) too: every namespace/attr mutation appends the
// (path, inode) it touched, a snapshot remembers its log position, and
// restore invalidates only the suffix written since. When a snapshot
// positioned AFTER the restore target is still live, restore also
// re-appends that suffix (deduped) — without this, restoring FORWARD
// to a snapshot taken on a different branch would miss entries (take
// S, touch /a, restore S, touch /b, take S2, restore S, restore S2:
// the jump back to S2 must still invalidate /b). With no such
// snapshot the re-append is skipped, so a backtracking walk that
// bounces off one rolling snapshot keeps the log flat. The invariant
// maintained is: for any live snapshot position p, the state at p and
// the current state differ only on records in [p, End()).
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "fs/checkpointable.h"
#include "fs/types.h"
#include "util/bytes.h"

namespace mcfs::verifs {

// Data-block granularity of the COW store. One block per small file is
// the common case in exploration workloads.
inline constexpr std::size_t kCowBlockSize = 4096;

using CowBlock = std::array<std::uint8_t, kCowBlockSize>;
using CowBlockPtr = std::shared_ptr<CowBlock>;

// A file's data buffer as a vector of refcounted 4K blocks plus a
// physical size. Mirrors the mutable-Bytes buffer it replaces:
// `size()` is the physical buffer size (which, like the old
// std::vector buffer, never shrinks except on Assign/reset), bytes
// beyond a resize are zero, and stale bytes between logical file size
// and physical size survive verbatim — several seeded VeriFS bugs
// depend on exactly that.
//
// Invariant: bytes in [size(), blocks_.size() * kCowBlockSize) are
// zero in every block, so growing within allocated blocks needs no
// clone and no memset.
class CowBuffer {
 public:
  std::uint64_t size() const { return physical_; }
  bool empty() const { return physical_ == 0; }

  // Grows the physical buffer to `n` bytes of which the new tail reads
  // zero. Shrinking is not supported (callers never shrink; logical
  // truncation only moves the inode's size field).
  void resize(std::uint64_t n);

  // Zeroes [off, off + n); requires off + n <= size().
  void Zero(std::uint64_t off, std::uint64_t n);

  // Copies `data` to [off, off + data.size()); grows physical size if
  // the write extends past it.
  void Write(std::uint64_t off, ByteView data);

  // Reads [off, off + n); requires off + n <= size().
  Bytes ReadBytes(std::uint64_t off, std::uint64_t n) const;

  // Replaces the whole buffer (symlink targets, deserialization).
  void Assign(ByteView data);

  // Materializes the full physical buffer (serialization).
  Bytes ToBytes() const;

  void clear();

  // For the snapshot stats walk.
  const std::vector<CowBlockPtr>& blocks() const { return blocks_; }

 private:
  // Clones blocks_[i] if it is shared with a snapshot.
  CowBlock& MutBlock(std::size_t i);

  std::vector<CowBlockPtr> blocks_;
  std::uint64_t physical_ = 0;
};

// Refcounted-chunk inode table. Get() is a const read; Mut() clones the
// owning chunk iff a snapshot still holds it, so within one operation a
// reference returned by Mut() stays valid across later Mut()/PushBack()
// calls (chunks only re-share at Snapshot/Restore, which happen between
// operations). Growth appends chunks and never moves existing ones, so
// — unlike the flat std::vector table this replaces — AllocInode cannot
// invalidate references either.
template <typename Inode>
class CowTable {
 public:
  static constexpr std::uint32_t kChunkSize = 8;

  struct Chunk {
    std::array<Inode, kChunkSize> slots;
  };
  using ChunkPtr = std::shared_ptr<Chunk>;

  // A snapshot root: the chunk-pointer vector plus the table size.
  struct Root {
    std::vector<ChunkPtr> chunks;
    std::uint32_t size = 0;
  };

  std::uint32_t size() const { return size_; }

  const Inode& Get(std::uint32_t i) const {
    return chunks_[i / kChunkSize]->slots[i % kChunkSize];
  }

  Inode& Mut(std::uint32_t i) {
    ChunkPtr& chunk = chunks_[i / kChunkSize];
    if (chunk.use_count() > 1) chunk = std::make_shared<Chunk>(*chunk);
    return chunk->slots[i % kChunkSize];
  }

  // Resets the table to `count` default-constructed inodes.
  void Assign(std::uint32_t count) {
    chunks_.clear();
    chunks_.resize((count + kChunkSize - 1) / kChunkSize);
    for (ChunkPtr& c : chunks_) c = std::make_shared<Chunk>();
    size_ = count;
  }

  // Grows the table by one default slot and returns its index. The new
  // slot is default-initialized in every shared copy of the last chunk
  // (slots past a root's size are never written on that root's branch),
  // so no clone is needed until the caller Mut()s it.
  std::uint32_t PushBack() {
    if (size_ % kChunkSize == 0) chunks_.push_back(std::make_shared<Chunk>());
    return size_++;
  }

  Root Snapshot() const { return Root{chunks_, size_}; }

  void Restore(const Root& root) {
    chunks_ = root.chunks;
    size_ = root.size;
  }

  void clear() {
    chunks_.clear();
    size_ = 0;
  }

  const std::vector<ChunkPtr>& chunks() const { return chunks_; }

 private:
  std::vector<ChunkPtr> chunks_;
  std::uint32_t size_ = 0;
};

// One kernel-cache invalidation: a full path for the dentry cache
// (empty = attribute-only change) and an inode number for the attr
// cache (fs::kInvalidInode = none).
struct InvalRecord {
  std::string path;
  fs::InodeNum ino = fs::kInvalidInode;
};

// Append-only mutation log driving O(dirty) restore-time invalidation.
// Positions are absolute (monotonic across trims).
class InvalLog {
 public:
  std::uint64_t End() const { return base_ + records_.size(); }

  // False if [pos, End) was trimmed away; restore must then fall back
  // to full-namespace invalidation.
  bool Covers(std::uint64_t pos) const { return pos >= base_; }

  void Append(std::string path, fs::InodeNum ino) {
    records_.push_back(InvalRecord{std::move(path), ino});
  }

  // Records in [pos, End). Requires Covers(pos).
  std::vector<InvalRecord> Since(std::uint64_t pos) const {
    return std::vector<InvalRecord>(
        records_.begin() + static_cast<std::ptrdiff_t>(pos - base_),
        records_.end());
  }

  void ReAppend(const std::vector<InvalRecord>& records) {
    records_.insert(records_.end(), records.begin(), records.end());
  }

  // Drops records below `pos` (no live snapshot needs them).
  void TrimBelow(std::uint64_t pos) {
    if (pos <= base_) return;
    std::uint64_t n = std::min<std::uint64_t>(pos - base_, records_.size());
    records_.erase(records_.begin(),
                   records_.begin() + static_cast<std::ptrdiff_t>(n));
    base_ += n;
  }

  // Drops the records at/after `pos`; End() rewinds to `pos`. Restore
  // uses this when rolling back to `pos` with no live snapshot
  // positioned after it: the dropped suffix described a timeline no
  // one can restore forward to, and rewinding makes a backtracking
  // bounce (mutate, restore, mutate, restore ...) O(dirty) instead of
  // O(everything since the snapshot). Requires Covers(pos).
  void TruncateTo(std::uint64_t pos) {
    records_.resize(static_cast<std::size_t>(pos - base_));
  }

  // Drops everything: all earlier snapshots fall back to full
  // invalidation on restore. Bounds log memory on very long runs.
  void Overflow() {
    base_ = End();
    records_.clear();
  }

  std::size_t record_count() const { return records_.size(); }

  void Reset() {
    records_.clear();
    base_ = 0;
  }

 private:
  std::vector<InvalRecord> records_;
  std::uint64_t base_ = 0;
};

// Cap on retained invalidation records; above this the log is trimmed
// to the oldest live snapshot and, failing that, overflowed.
inline constexpr std::size_t kMaxInvalRecords = 1 << 16;

// Collapses duplicate (path, inode) records. Invalidation is a set
// operation, so a deduped tail is equivalent — and a re-appended
// restore tail is then bounded by the number of distinct entities
// touched, not by log length. Without this, a backtracking loop that
// alternates one mutation with one restore re-appends its own
// re-appends and the suffix doubles on every bounce.
inline void DedupInvalRecords(std::vector<InvalRecord>& records) {
  std::sort(records.begin(), records.end(),
            [](const InvalRecord& a, const InvalRecord& b) {
              return std::tie(a.path, a.ino) < std::tie(b.path, b.ino);
            });
  records.erase(std::unique(records.begin(), records.end(),
                            [](const InvalRecord& a, const InvalRecord& b) {
                              return a.path == b.path && a.ino == b.ino;
                            }),
                records.end());
}

}  // namespace mcfs::verifs

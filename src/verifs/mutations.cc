#include "verifs/mutations.h"

namespace mcfs::verifs {
namespace {

Mutant Make(std::string name, std::string hint, bool verifs2,
            bool historical, bool expect_detected,
            bool VerifsBugs::*flag) {
  Mutant m;
  m.name = std::move(name);
  m.hint = std::move(hint);
  m.verifs2 = verifs2;
  m.historical = historical;
  m.expect_detected = expect_detected;
  m.bugs.*flag = true;
  return m;
}

Mutant MakeCrash(std::string name, std::string hint, std::string crash_fs,
                 bool VerifsBugs::*flag) {
  Mutant m;
  m.name = std::move(name);
  m.hint = std::move(hint);
  m.crash = true;
  m.crash_fs = std::move(crash_fs);
  m.expect_detected = true;
  m.bugs.*flag = true;
  return m;
}

Mutant MakeDual(std::string name, std::string hint,
                bool VerifsBugs::*flag) {
  Mutant m;
  m.name = std::move(name);
  m.hint = std::move(hint);
  m.dual = true;
  m.verifs2 = true;             // spec axis pairs the spec vs VeriFS2
  m.expect_detected = false;    // relative checking is blind to duals
  m.bugs.*flag = true;
  return m;
}

std::vector<Mutant> BuildCorpus() {
  std::vector<Mutant> corpus;
  // ----- The four historical paper bugs (§6). -----
  corpus.push_back(Make(
      "truncate_no_zero_on_expand",
      "read after truncate-expand returns stale bytes from a longer "
      "incarnation of the file",
      /*verifs2=*/false, /*historical=*/true, /*expect_detected=*/true,
      &VerifsBugs::truncate_no_zero_on_expand));
  corpus.push_back(Make(
      "skip_cache_invalidation_on_restore",
      "stale kernel dentry/inode cache after rollback: mkdir EEXIST for a "
      "directory that does not exist (needs the FUSE transport and a "
      "restore-based strategy)",
      /*verifs2=*/false, /*historical=*/true, /*expect_detected=*/true,
      &VerifsBugs::skip_cache_invalidation_on_restore));
  corpus.push_back(Make(
      "write_hole_no_zero",
      "read across a hole created by a write beyond EOF returns garbage "
      "instead of zeros",
      /*verifs2=*/true, /*historical=*/true, /*expect_detected=*/true,
      &VerifsBugs::write_hole_no_zero));
  corpus.push_back(Make(
      "size_update_only_on_capacity_growth",
      "stat/read after an in-capacity append sees the old, short size",
      /*verifs2=*/true, /*historical=*/true, /*expect_detected=*/true,
      &VerifsBugs::size_update_only_on_capacity_growth));
  // ----- Synthetic VeriFS1 mutants. -----
  corpus.push_back(Make(
      "stat_size_off_by_one",
      "stat reports every regular file one byte larger than its content",
      /*verifs2=*/false, /*historical=*/false, /*expect_detected=*/true,
      &VerifsBugs::stat_size_off_by_one));
  corpus.push_back(Make(
      "mkdir_eexist_as_enoent",
      "mkdir over an existing name returns ENOENT instead of EEXIST",
      /*verifs2=*/false, /*historical=*/false, /*expect_detected=*/true,
      &VerifsBugs::mkdir_eexist_as_enoent));
  corpus.push_back(Make(
      "mkdir_eexist_chowns_parent",
      "mkdir's EEXIST path bumps the parent directory's gid — a failed "
      "op mutating state one hop from its target",
      /*verifs2=*/false, /*historical=*/false, /*expect_detected=*/true,
      &VerifsBugs::mkdir_eexist_chowns_parent));
  corpus.push_back(Make(
      "rmdir_ignores_nonempty",
      "rmdir of a non-empty directory succeeds and the children vanish",
      /*verifs2=*/false, /*historical=*/false, /*expect_detected=*/true,
      &VerifsBugs::rmdir_ignores_nonempty));
  corpus.push_back(Make(
      "chmod_ignores_mode",
      "chmod returns OK but a later stat still shows the old mode",
      /*verifs2=*/false, /*historical=*/false, /*expect_detected=*/true,
      &VerifsBugs::chmod_ignores_mode));
  corpus.push_back(Make(
      "truncate_shrink_noop",
      "truncate to a smaller size is silently ignored; stat/read see the "
      "old length",
      /*verifs2=*/false, /*historical=*/false, /*expect_detected=*/true,
      &VerifsBugs::truncate_shrink_noop));
  corpus.push_back(Make(
      "restore_skips_one_inode",
      "one file or directory vanishes per ioctl rollback (needs a "
      "restore-based strategy and exploration deep enough to backtrack)",
      /*verifs2=*/false, /*historical=*/false, /*expect_detected=*/true,
      &VerifsBugs::restore_skips_one_inode));
  // ----- Synthetic VeriFS2 mutants. -----
  corpus.push_back(Make(
      "rename_drops_xattrs",
      "getxattr after rename returns ENODATA for attributes set before "
      "the move",
      /*verifs2=*/true, /*historical=*/false, /*expect_detected=*/true,
      &VerifsBugs::rename_drops_xattrs));
  corpus.push_back(Make(
      "unlink_enoent_as_eperm",
      "unlink of a missing file returns EPERM instead of ENOENT",
      /*verifs2=*/true, /*historical=*/false, /*expect_detected=*/true,
      &VerifsBugs::unlink_enoent_as_eperm));
  corpus.push_back(Make(
      "symlink_truncates_target",
      "readlink returns the target minus its last character",
      /*verifs2=*/true, /*historical=*/false, /*expect_detected=*/true,
      &VerifsBugs::symlink_truncates_target));
  corpus.push_back(Make(
      "removexattr_ok_when_missing",
      "removexattr of an absent name returns OK instead of ENODATA",
      /*verifs2=*/true, /*historical=*/false, /*expect_detected=*/true,
      &VerifsBugs::removexattr_ok_when_missing));
  corpus.push_back(Make(
      "write_grow_size_off_by_one",
      "stat/read after an in-capacity growing write see one byte too few",
      /*verifs2=*/true, /*historical=*/false, /*expect_detected=*/true,
      &VerifsBugs::write_grow_size_off_by_one));
  corpus.push_back(Make(
      "getattr_nlink_off_by_one",
      "stat reports nlink one too high for regular files",
      /*verifs2=*/true, /*historical=*/false, /*expect_detected=*/true,
      &VerifsBugs::getattr_nlink_off_by_one));
  corpus.push_back(Make(
      "truncate_expand_stale",
      "read after truncate-expand returns stale buffer bytes (VeriFS2 "
      "re-introduction of historical bug #1)",
      /*verifs2=*/true, /*historical=*/false, /*expect_detected=*/true,
      &VerifsBugs::truncate_expand_stale));
  corpus.push_back(Make(
      "link_allows_overwrite",
      "link over an existing destination succeeds instead of EEXIST",
      /*verifs2=*/true, /*historical=*/false, /*expect_detected=*/true,
      &VerifsBugs::link_allows_overwrite));
  corpus.push_back(Make(
      "readdir_reverse_order",
      "directory listing comes back in reverse order; the checker sorts "
      "dirents (§3.4 workaround 2), so this mutant survives BY DESIGN — "
      "it documents an accepted blind spot (without FUSE it can still be "
      "caught incidentally via a restore/dcache side channel)",
      /*verifs2=*/true, /*historical=*/false, /*expect_detected=*/false,
      &VerifsBugs::readdir_reverse_order));
  // ----- Dual mutants (same bug in BOTH families; need the spec). -----
  corpus.push_back(MakeDual(
      "dual_rmdir_missing_as_enotdir",
      "rmdir of a missing name returns ENOTDIR instead of ENOENT in both "
      "VeriFS1 and VeriFS2: the relative pairing agrees on the wrong "
      "errno and survives by construction; the executable spec kills it "
      "in one operation",
      &VerifsBugs::dual_rmdir_missing_as_enotdir));
  corpus.push_back(MakeDual(
      "dual_chmod_keeps_group_bits",
      "chmod preserves the old group permission bits in both VeriFS1 and "
      "VeriFS2: every relative vote matches the identically wrong modes; "
      "the executable spec sees the 0600-vs-0640 divergence",
      &VerifsBugs::dual_chmod_keeps_group_bits));
  // ----- Crash mutants (kernel FS persistence bugs; need crash mode). -----
  corpus.push_back(MakeCrash(
      "jffs2_skip_log_replay",
      "mount after a crash ignores the flash log and presents an empty "
      "tree; fsync'd files vanish (live behaviour is unchanged because "
      "the in-memory index is authoritative while mounted)",
      "jffs2f", &VerifsBugs::jffs2_skip_log_replay));
  corpus.push_back(MakeCrash(
      "ext4_ack_before_journal_commit",
      "fsync returns success without the device barrier, so a crash right "
      "after a 'successful' fsync can drop the journal commit and the "
      "data it covered",
      "ext4f", &VerifsBugs::ext4_ack_before_journal_commit));
  return corpus;
}

}  // namespace

const std::vector<Mutant>& MutationCorpus() {
  static const std::vector<Mutant>* corpus =
      new std::vector<Mutant>(BuildCorpus());
  return *corpus;
}

const Mutant* FindMutant(const std::string& name) {
  for (const Mutant& m : MutationCorpus()) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

}  // namespace mcfs::verifs

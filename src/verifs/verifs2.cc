#include "verifs/verifs2.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "fs/path.h"

namespace mcfs::verifs {

Verifs2::Verifs2(Verifs2Options options) : options_(std::move(options)) {}

// ---------------------------------------------------------------------------
// Lifecycle

Status Verifs2::Mkfs() {
  if (mounted_) return Errno::kEBUSY;
  inodes_.assign(1, Inode{});
  Inode& root = inodes_[kRootIndex];
  root.used = true;
  root.type = fs::FileType::kDirectory;
  root.mode = 0755;
  root.uid = options_.identity.uid;
  root.gid = options_.identity.gid;
  root.atime_ns = root.mtime_ns = root.ctime_ns = NowNs();
  return Status::Ok();
}

Status Verifs2::Mount() {
  if (mounted_) return Errno::kEBUSY;
  if (inodes_.empty()) return Errno::kEINVAL;
  mounted_ = true;
  return Status::Ok();
}

Status Verifs2::Unmount() {
  if (!mounted_) return Errno::kEINVAL;
  mounted_ = false;
  open_files_.clear();
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Helpers

Result<std::uint32_t> Verifs2::ResolveIndex(const std::string& path) const {
  if (!mounted_) return Errno::kEINVAL;
  auto split = fs::SplitPath(path);
  if (!split.ok()) return split.error();
  std::uint32_t index = kRootIndex;
  for (const auto& comp : split.value()) {
    const Inode& inode = inodes_[index];
    if (inode.type != fs::FileType::kDirectory) return Errno::kENOTDIR;
    if (!fs::PermissionGranted(ToAttr(index, inode), options_.identity,
                               fs::kXOk)) {
      return Errno::kEACCES;
    }
    auto it = inode.children.find(comp);
    if (it == inode.children.end()) return Errno::kENOENT;
    index = it->second;
  }
  return index;
}

Result<Verifs2::ParentRef> Verifs2::ResolveParentRef(
    const std::string& path) const {
  auto split = fs::SplitPath(path);
  if (!split.ok()) return split.error();
  if (split.value().empty()) return Errno::kEINVAL;
  auto parent = ResolveIndex(fs::ParentPath(path));
  if (!parent.ok()) return parent.error();
  if (inodes_[parent.value()].type != fs::FileType::kDirectory) {
    return Errno::kENOTDIR;
  }
  return ParentRef{parent.value(), split.value().back()};
}

std::uint32_t Verifs2::AllocInode() {
  for (std::uint32_t i = 0; i < inodes_.size(); ++i) {
    if (!inodes_[i].used) return i;
  }
  inodes_.emplace_back();  // no fixed array: the table grows on demand
  return static_cast<std::uint32_t>(inodes_.size() - 1);
}

std::uint32_t Verifs2::CountLinks(std::uint32_t index) const {
  std::uint32_t n = 0;
  for (const auto& inode : inodes_) {
    if (!inode.used || inode.type != fs::FileType::kDirectory) continue;
    for (const auto& [name, child] : inode.children) {
      if (child == index) ++n;
    }
  }
  return n;
}

void Verifs2::ReleaseInodeIfUnlinked(std::uint32_t index) {
  if (index == kRootIndex) return;
  if (CountLinks(index) == 0) inodes_[index] = Inode{};
}

fs::InodeAttr Verifs2::ToAttr(std::uint32_t index, const Inode& inode) const {
  fs::InodeAttr attr;
  attr.ino = index + 1;
  attr.type = inode.type;
  attr.mode = inode.mode;
  if (inode.type == fs::FileType::kDirectory) {
    std::uint32_t n = 2;
    for (const auto& [name, child] : inode.children) {
      if (inodes_[child].type == fs::FileType::kDirectory) ++n;
    }
    attr.nlink = n;
    attr.size = inode.children.size() * 32;
  } else {
    const std::uint32_t links = CountLinks(index);
    attr.nlink = (links == 0 ? 1 : links) +
                 (options_.bugs.getattr_nlink_off_by_one ? 1 : 0);
    attr.size = inode.size;
  }
  attr.uid = inode.uid;
  attr.gid = inode.gid;
  attr.atime_ns = inode.atime_ns;
  attr.mtime_ns = inode.mtime_ns;
  attr.ctime_ns = inode.ctime_ns;
  attr.blocks = (inode.size + 511) / 512;
  return attr;
}

std::uint64_t Verifs2::TotalDataBytes() const {
  std::uint64_t total = 0;
  for (const auto& inode : inodes_) {
    if (inode.used) total += inode.size;
  }
  return total;
}

Status Verifs2::CheckQuota(std::uint64_t additional) const {
  // Unlike VeriFS1, VeriFS2 bounds the total data it stores.
  if (TotalDataBytes() + additional > options_.max_total_bytes) {
    return Errno::kENOSPC;
  }
  return Status::Ok();
}

Result<std::uint32_t> Verifs2::CreateChild(const ParentRef& ref,
                                           fs::FileType type, fs::Mode mode,
                                           const std::string& symlink_target) {
  Inode& pnode = inodes_[ref.parent_index];
  if (!fs::PermissionGranted(ToAttr(ref.parent_index, pnode),
                             options_.identity, fs::kWOk)) {
    return Errno::kEACCES;
  }
  if (pnode.children.contains(ref.name)) return Errno::kEEXIST;
  const std::uint32_t slot = AllocInode();
  // AllocInode may reallocate inodes_; re-take the parent reference.
  Inode& parent = inodes_[ref.parent_index];
  Inode& child = inodes_[slot];
  child = Inode{};
  child.used = true;
  child.type = type;
  child.mode = static_cast<fs::Mode>(mode & fs::kModeMask);
  child.uid = options_.identity.uid;
  child.gid = options_.identity.gid;
  child.atime_ns = child.mtime_ns = child.ctime_ns = NowNs();
  if (type == fs::FileType::kSymlink) {
    child.buf.assign(symlink_target.begin(), symlink_target.end());
    child.size = child.buf.size();
  }
  parent.children[ref.name] = slot;
  parent.mtime_ns = NowNs();
  return slot;
}

// ---------------------------------------------------------------------------
// Namespace operations

Result<fs::InodeAttr> Verifs2::GetAttr(const std::string& path) {
  auto index = ResolveIndex(path);
  if (!index.ok()) return index.error();
  return ToAttr(index.value(), inodes_[index.value()]);
}

Status Verifs2::Mkdir(const std::string& path, fs::Mode mode) {
  auto parent = ResolveParentRef(path);
  if (!parent.ok()) return parent.error();
  auto child =
      CreateChild(parent.value(), fs::FileType::kDirectory, mode, "");
  return child.ok() ? Status::Ok() : Status(child.error());
}

Status Verifs2::Rmdir(const std::string& path) {
  if (path == "/") return Errno::kEBUSY;
  auto parent = ResolveParentRef(path);
  if (!parent.ok()) return parent.error();
  Inode& pnode = inodes_[parent.value().parent_index];
  if (!fs::PermissionGranted(ToAttr(parent.value().parent_index, pnode),
                             options_.identity, fs::kWOk)) {
    return Errno::kEACCES;
  }
  auto it = pnode.children.find(parent.value().name);
  if (it == pnode.children.end()) return Errno::kENOENT;
  const std::uint32_t victim = it->second;
  if (inodes_[victim].type != fs::FileType::kDirectory) {
    return Errno::kENOTDIR;
  }
  if (!inodes_[victim].children.empty()) return Errno::kENOTEMPTY;
  pnode.children.erase(it);
  pnode.mtime_ns = NowNs();
  inodes_[victim] = Inode{};
  return Status::Ok();
}

Status Verifs2::Unlink(const std::string& path) {
  auto parent = ResolveParentRef(path);
  if (!parent.ok()) return parent.error();
  Inode& pnode = inodes_[parent.value().parent_index];
  if (!fs::PermissionGranted(ToAttr(parent.value().parent_index, pnode),
                             options_.identity, fs::kWOk)) {
    return Errno::kEACCES;
  }
  auto it = pnode.children.find(parent.value().name);
  if (it == pnode.children.end()) {
    // Mutant: the "no such file" case mapped to the wrong errno.
    return options_.bugs.unlink_enoent_as_eperm ? Errno::kEPERM
                                                : Errno::kENOENT;
  }
  const std::uint32_t victim = it->second;
  if (inodes_[victim].type == fs::FileType::kDirectory) {
    return Errno::kEISDIR;
  }
  pnode.children.erase(it);
  pnode.mtime_ns = NowNs();
  ReleaseInodeIfUnlinked(victim);  // hard links keep the inode alive
  return Status::Ok();
}

Result<std::vector<fs::DirEntry>> Verifs2::ReadDir(const std::string& path) {
  auto index = ResolveIndex(path);
  if (!index.ok()) return index.error();
  Inode& inode = inodes_[index.value()];
  if (inode.type != fs::FileType::kDirectory) return Errno::kENOTDIR;
  if (!fs::PermissionGranted(ToAttr(index.value(), inode),
                             options_.identity, fs::kROk)) {
    return Errno::kEACCES;
  }
  inode.atime_ns = NowNs();
  std::vector<fs::DirEntry> out;
  out.reserve(inode.children.size());
  for (const auto& [name, child] : inode.children) {
    out.push_back({name, static_cast<fs::InodeNum>(child + 1),
                   inodes_[child].type});
  }
  // Mutant: reversed listing order. The checker sorts dirents before
  // comparing (§3.4 workaround 2), so this one survives by design.
  if (options_.bugs.readdir_reverse_order) {
    std::reverse(out.begin(), out.end());
  }
  return out;
}

// ---------------------------------------------------------------------------
// File I/O — where historical bugs #3 and #4 live

Result<fs::FileHandle> Verifs2::Open(const std::string& path,
                                     std::uint32_t flags, fs::Mode mode) {
  if (!mounted_) return Errno::kEINVAL;
  auto index = ResolveIndex(path);
  std::uint32_t ino_index;
  if (!index.ok()) {
    if (index.error() != Errno::kENOENT || !(flags & fs::kCreate)) {
      return index.error();
    }
    auto parent = ResolveParentRef(path);
    if (!parent.ok()) return parent.error();
    auto child =
        CreateChild(parent.value(), fs::FileType::kRegular, mode, "");
    if (!child.ok()) return child.error();
    ino_index = child.value();
  } else {
    if (flags & fs::kCreate && flags & fs::kExcl) return Errno::kEEXIST;
    ino_index = index.value();
    Inode& inode = inodes_[ino_index];
    const bool want_write = (flags & fs::kAccessModeMask) != fs::kRdOnly;
    if (inode.type == fs::FileType::kDirectory && want_write) {
      return Errno::kEISDIR;
    }
    if (inode.type == fs::FileType::kSymlink) return Errno::kELOOP;
    const std::uint32_t want =
        want_write ? ((flags & fs::kAccessModeMask) == fs::kRdWr
                          ? (fs::kROk | fs::kWOk)
                          : fs::kWOk)
                   : fs::kROk;
    if (!fs::PermissionGranted(ToAttr(ino_index, inode), options_.identity,
                               want)) {
      return Errno::kEACCES;
    }
    if ((flags & fs::kTrunc) && want_write &&
        inode.type == fs::FileType::kRegular) {
      inode.size = 0;  // capacity (buf) is retained
      inode.mtime_ns = NowNs();
    }
  }
  const fs::FileHandle fh = next_handle_++;
  open_files_[fh] = OpenFile{ino_index, flags};
  return fh;
}

Status Verifs2::Close(fs::FileHandle fh) {
  if (!mounted_) return Errno::kEINVAL;
  return open_files_.erase(fh) == 1 ? Status::Ok() : Status(Errno::kEBADF);
}

Result<Bytes> Verifs2::Read(fs::FileHandle fh, std::uint64_t offset,
                            std::uint64_t size) {
  if (!mounted_) return Errno::kEINVAL;
  auto it = open_files_.find(fh);
  if (it == open_files_.end()) return Errno::kEBADF;
  if ((it->second.flags & fs::kAccessModeMask) == fs::kWrOnly) {
    return Errno::kEBADF;
  }
  Inode& inode = inodes_[it->second.ino_index];
  if (inode.type == fs::FileType::kDirectory) return Errno::kEISDIR;
  inode.atime_ns = NowNs();
  if (offset >= inode.size) return Bytes{};
  const std::uint64_t n = std::min(size, inode.size - offset);
  return Bytes(inode.buf.begin() + static_cast<std::ptrdiff_t>(offset),
               inode.buf.begin() + static_cast<std::ptrdiff_t>(offset + n));
}

Result<std::uint64_t> Verifs2::Write(fs::FileHandle fh, std::uint64_t offset,
                                     ByteView data) {
  if (!mounted_) return Errno::kEINVAL;
  auto it = open_files_.find(fh);
  if (it == open_files_.end()) return Errno::kEBADF;
  if ((it->second.flags & fs::kAccessModeMask) == fs::kRdOnly) {
    return Errno::kEBADF;
  }
  Inode& inode = inodes_[it->second.ino_index];
  if (it->second.flags & fs::kAppend) offset = inode.size;

  const std::uint64_t required = offset + data.size();
  if (required > inode.size) {
    if (Status s = CheckQuota(required - inode.size); !s.ok()) return s.error();
  }

  if (offset > inode.size) {
    // The write creates a hole. The fixed implementation zeroes the gap
    // (including any stale capacity bytes from a previous, longer
    // incarnation); historical bug #3 left them in place (paper §6).
    if (!options_.bugs.write_hole_no_zero) {
      const std::uint64_t zero_end =
          std::min<std::uint64_t>(offset, inode.buf.size());
      if (zero_end > inode.size) {
        std::memset(inode.buf.data() + inode.size, 0,
                    zero_end - inode.size);
      }
    }
    if (offset > inode.buf.size()) {
      inode.buf.resize(offset, 0);
    }
  }

  if (required > inode.buf.size()) {
    // Grow capacity by doubling, as VeriFS2 did.
    const std::uint64_t new_capacity =
        std::max<std::uint64_t>(std::bit_ceil(required), 64);
    inode.buf.resize(new_capacity, 0);
    // On the growth path even the buggy VeriFS2 updated the size...
    inode.size = required;
  } else if (!options_.bugs.size_update_only_on_capacity_growth) {
    // ...but historical bug #4 forgot to update it on the in-capacity
    // path, leaving appended files short (paper §6). The off-by-one
    // mutant records one byte too few on that same path.
    std::uint64_t new_size = required;
    if (options_.bugs.write_grow_size_off_by_one && required > inode.size) {
      new_size = required - 1;
    }
    inode.size = std::max(inode.size, new_size);
  }

  // Zero-length spans carry a null data() that memcpy must not see.
  if (!data.empty()) {
    std::memcpy(inode.buf.data() + offset, data.data(), data.size());
  }
  inode.mtime_ns = NowNs();
  inode.ctime_ns = inode.mtime_ns;
  return data.size();
}

Status Verifs2::Truncate(const std::string& path, std::uint64_t size) {
  auto index = ResolveIndex(path);
  if (!index.ok()) return index.error();
  Inode& inode = inodes_[index.value()];
  if (inode.type == fs::FileType::kDirectory) return Errno::kEISDIR;
  if (!fs::PermissionGranted(ToAttr(index.value(), inode),
                             options_.identity, fs::kWOk)) {
    return Errno::kEACCES;
  }
  if (size > inode.size) {
    if (Status s = CheckQuota(size - inode.size); !s.ok()) return s;
    // VeriFS2 learned this zeroing from VeriFS1's bug #1: the whole
    // reclaimed region must be cleared, including stale capacity bytes
    // below the old buffer end when the buffer also grows. The
    // truncate_expand_stale mutant re-introduces exactly that bug.
    const std::uint64_t zero_end =
        std::min<std::uint64_t>(size, inode.buf.size());
    if (zero_end > inode.size && !options_.bugs.truncate_expand_stale) {
      std::memset(inode.buf.data() + inode.size, 0, zero_end - inode.size);
    }
    if (size > inode.buf.size()) {
      inode.buf.resize(size, 0);
    }
  }
  inode.size = size;
  inode.mtime_ns = NowNs();
  inode.ctime_ns = inode.mtime_ns;
  return Status::Ok();
}

Status Verifs2::Fsync(fs::FileHandle fh) {
  if (!mounted_) return Errno::kEINVAL;
  return open_files_.contains(fh) ? Status::Ok() : Status(Errno::kEBADF);
}

// ---------------------------------------------------------------------------
// Attributes

Status Verifs2::Chmod(const std::string& path, fs::Mode mode) {
  auto index = ResolveIndex(path);
  if (!index.ok()) return index.error();
  Inode& inode = inodes_[index.value()];
  if (!options_.identity.IsRoot() && options_.identity.uid != inode.uid) {
    return Errno::kEPERM;
  }
  inode.mode = static_cast<fs::Mode>(mode & fs::kModeMask);
  inode.ctime_ns = NowNs();
  return Status::Ok();
}

Status Verifs2::Chown(const std::string& path, std::uint32_t uid,
                      std::uint32_t gid) {
  auto index = ResolveIndex(path);
  if (!index.ok()) return index.error();
  if (!options_.identity.IsRoot()) return Errno::kEPERM;
  Inode& inode = inodes_[index.value()];
  inode.uid = uid;
  inode.gid = gid;
  inode.ctime_ns = NowNs();
  return Status::Ok();
}

Result<fs::StatVfs> Verifs2::StatFs() {
  if (!mounted_) return Errno::kEINVAL;
  fs::StatVfs out;
  out.block_size = 4096;
  out.total_bytes = options_.max_total_bytes;
  const std::uint64_t used = TotalDataBytes();
  out.free_bytes = used >= out.total_bytes ? 0 : out.total_bytes - used;
  out.total_inodes = 0xffffffff;
  std::uint64_t used_inodes = 0;
  for (const auto& inode : inodes_) {
    if (inode.used) ++used_inodes;
  }
  out.free_inodes = 0xffffffff - used_inodes;
  return out;
}

bool Verifs2::Supports(fs::FsFeature feature) const {
  switch (feature) {
    case fs::FsFeature::kCheckpointRestore:
    case fs::FsFeature::kRename:
    case fs::FsFeature::kHardLink:
    case fs::FsFeature::kSymlink:
    case fs::FsFeature::kAccess:
    case fs::FsFeature::kXattr:
      return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// The VeriFS2 feature additions

Status Verifs2::Rename(const std::string& from, const std::string& to) {
  if (from == "/" || to == "/") return Errno::kEBUSY;
  if (fs::IsPathPrefix(from, to) && from != to) return Errno::kEINVAL;

  auto src = ResolveParentRef(from);
  if (!src.ok()) return src.error();
  auto dst = ResolveParentRef(to);
  if (!dst.ok()) return dst.error();

  Inode& src_parent = inodes_[src.value().parent_index];
  Inode& dst_parent = inodes_[dst.value().parent_index];
  if (!fs::PermissionGranted(ToAttr(src.value().parent_index, src_parent),
                             options_.identity, fs::kWOk) ||
      !fs::PermissionGranted(ToAttr(dst.value().parent_index, dst_parent),
                             options_.identity, fs::kWOk)) {
    return Errno::kEACCES;
  }

  auto src_it = src_parent.children.find(src.value().name);
  if (src_it == src_parent.children.end()) return Errno::kENOENT;
  const std::uint32_t moving = src_it->second;
  if (from == to) return Status::Ok();

  auto dst_it = dst_parent.children.find(dst.value().name);
  if (dst_it != dst_parent.children.end()) {
    const std::uint32_t victim = dst_it->second;
    if (inodes_[moving].type == fs::FileType::kDirectory) {
      if (inodes_[victim].type != fs::FileType::kDirectory) {
        return Errno::kENOTDIR;
      }
      if (!inodes_[victim].children.empty()) return Errno::kENOTEMPTY;
    } else if (inodes_[victim].type == fs::FileType::kDirectory) {
      return Errno::kEISDIR;
    }
    dst_parent.children.erase(dst_it);
    ReleaseInodeIfUnlinked(victim);
  }

  src_parent.children.erase(src.value().name);
  dst_parent.children[dst.value().name] = moving;
  // Mutant: the move loses the inode's extended attributes.
  if (options_.bugs.rename_drops_xattrs) inodes_[moving].xattrs.clear();
  const std::uint64_t t = NowNs();
  src_parent.mtime_ns = t;
  dst_parent.mtime_ns = t;
  return Status::Ok();
}

Status Verifs2::Link(const std::string& existing, const std::string& link) {
  auto src = ResolveIndex(existing);
  if (!src.ok()) return src.error();
  if (inodes_[src.value()].type == fs::FileType::kDirectory) {
    return Errno::kEPERM;
  }
  auto dst = ResolveParentRef(link);
  if (!dst.ok()) return dst.error();
  Inode& parent = inodes_[dst.value().parent_index];
  if (!fs::PermissionGranted(ToAttr(dst.value().parent_index, parent),
                             options_.identity, fs::kWOk)) {
    return Errno::kEACCES;
  }
  // Mutant: silently overwrite an existing destination (the displaced
  // inode leaks) instead of failing EEXIST.
  if (parent.children.contains(dst.value().name) &&
      !options_.bugs.link_allows_overwrite) {
    return Errno::kEEXIST;
  }
  parent.children[dst.value().name] = src.value();
  parent.mtime_ns = NowNs();
  inodes_[src.value()].ctime_ns = NowNs();
  return Status::Ok();
}

Status Verifs2::Symlink(const std::string& target, const std::string& link) {
  if (target.empty() || target.size() > fs::kPathMax) return Errno::kEINVAL;
  auto parent = ResolveParentRef(link);
  if (!parent.ok()) return parent.error();
  // Mutant: the stored target loses its last character.
  const std::string stored =
      options_.bugs.symlink_truncates_target
          ? target.substr(0, target.size() - 1)
          : target;
  auto child =
      CreateChild(parent.value(), fs::FileType::kSymlink, 0777, stored);
  return child.ok() ? Status::Ok() : Status(child.error());
}

Result<std::string> Verifs2::ReadLink(const std::string& path) {
  auto index = ResolveIndex(path);
  if (!index.ok()) return index.error();
  const Inode& inode = inodes_[index.value()];
  if (inode.type != fs::FileType::kSymlink) return Errno::kEINVAL;
  return std::string(inode.buf.begin(),
                     inode.buf.begin() +
                         static_cast<std::ptrdiff_t>(inode.size));
}

Status Verifs2::Access(const std::string& path, std::uint32_t mode) {
  auto index = ResolveIndex(path);
  if (!index.ok()) return index.error();
  if (mode == fs::kFOk) return Status::Ok();
  return fs::PermissionGranted(ToAttr(index.value(), inodes_[index.value()]),
                               options_.identity, mode)
             ? Status::Ok()
             : Status(Errno::kEACCES);
}

Status Verifs2::SetXattr(const std::string& path, const std::string& name,
                         ByteView value) {
  if (name.empty() || name.size() > fs::kNameMax) return Errno::kEINVAL;
  auto index = ResolveIndex(path);
  if (!index.ok()) return index.error();
  Inode& inode = inodes_[index.value()];
  inode.xattrs[name] = Bytes(value.begin(), value.end());
  inode.ctime_ns = NowNs();
  return Status::Ok();
}

Result<Bytes> Verifs2::GetXattr(const std::string& path,
                                const std::string& name) {
  auto index = ResolveIndex(path);
  if (!index.ok()) return index.error();
  const Inode& inode = inodes_[index.value()];
  auto it = inode.xattrs.find(name);
  if (it == inode.xattrs.end()) return Errno::kENODATA;
  return it->second;
}

Result<std::vector<std::string>> Verifs2::ListXattr(const std::string& path) {
  auto index = ResolveIndex(path);
  if (!index.ok()) return index.error();
  const Inode& inode = inodes_[index.value()];
  std::vector<std::string> names;
  names.reserve(inode.xattrs.size());
  for (const auto& [name, value] : inode.xattrs) names.push_back(name);
  return names;
}

Status Verifs2::RemoveXattr(const std::string& path,
                            const std::string& name) {
  auto index = ResolveIndex(path);
  if (!index.ok()) return index.error();
  Inode& inode = inodes_[index.value()];
  if (inode.xattrs.erase(name) == 0) {
    // Mutant: removing an absent attribute claims success.
    return options_.bugs.removexattr_ok_when_missing
               ? Status::Ok()
               : Status(Errno::kENODATA);
  }
  inode.ctime_ns = NowNs();
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Checkpoint / restore

Bytes Verifs2::SerializeState() const {
  ByteWriter w;
  w.PutU32(static_cast<std::uint32_t>(inodes_.size()));
  for (const auto& inode : inodes_) {
    w.PutU8(inode.used ? 1 : 0);
    if (!inode.used) continue;
    w.PutU8(static_cast<std::uint8_t>(inode.type));
    w.PutU16(inode.mode);
    w.PutU32(inode.uid);
    w.PutU32(inode.gid);
    w.PutU64(inode.atime_ns);
    w.PutU64(inode.mtime_ns);
    w.PutU64(inode.ctime_ns);
    w.PutU64(inode.size);
    // Full physical buffer, as VeriFS1 does (see verifs1.cc): capacity
    // contents are part of the daemon's state.
    w.PutBlob(inode.buf);
    w.PutU32(static_cast<std::uint32_t>(inode.children.size()));
    for (const auto& [name, child] : inode.children) {
      w.PutString(name);
      w.PutU32(child);
    }
    w.PutU32(static_cast<std::uint32_t>(inode.xattrs.size()));
    for (const auto& [name, value] : inode.xattrs) {
      w.PutString(name);
      w.PutBlob(value);
    }
  }
  w.PutU64(op_counter_);
  return w.Take();
}

void Verifs2::DeserializeState(ByteView state) {
  ByteReader r(state);
  const std::uint32_t count = r.GetU32();
  inodes_.assign(count, Inode{});
  for (std::uint32_t i = 0; i < count; ++i) {
    if (r.GetU8() == 0) continue;
    Inode& inode = inodes_[i];
    inode.used = true;
    inode.type = static_cast<fs::FileType>(r.GetU8());
    inode.mode = r.GetU16();
    inode.uid = r.GetU32();
    inode.gid = r.GetU32();
    inode.atime_ns = r.GetU64();
    inode.mtime_ns = r.GetU64();
    inode.ctime_ns = r.GetU64();
    inode.size = r.GetU64();
    inode.buf = r.GetBlob();
    const std::uint32_t nchildren = r.GetU32();
    for (std::uint32_t c = 0; c < nchildren; ++c) {
      std::string name = r.GetString();
      inode.children[std::move(name)] = r.GetU32();
    }
    const std::uint32_t nxattrs = r.GetU32();
    for (std::uint32_t x = 0; x < nxattrs; ++x) {
      std::string name = r.GetString();
      inode.xattrs[std::move(name)] = r.GetBlob();
    }
  }
  op_counter_ = r.GetU64();
}

void Verifs2::CollectPathsRec(std::uint32_t index, const std::string& prefix,
                              std::vector<std::string>* out) const {
  const Inode& inode = inodes_[index];
  for (const auto& [name, child] : inode.children) {
    const std::string path = prefix == "/" ? "/" + name : prefix + "/" + name;
    out->push_back(path);
    if (inodes_[child].type == fs::FileType::kDirectory) {
      CollectPathsRec(child, path, out);
    }
  }
}

std::vector<std::string> Verifs2::CollectAllPaths() const {
  std::vector<std::string> out;
  if (!inodes_.empty()) CollectPathsRec(kRootIndex, "/", &out);
  return out;
}

std::vector<fs::InodeNum> Verifs2::CollectUsedInos() const {
  std::vector<fs::InodeNum> inos;
  for (std::uint32_t i = 0; i < inodes_.size(); ++i) {
    if (inodes_[i].used) inos.push_back(static_cast<fs::InodeNum>(i + 1));
  }
  return inos;
}

void Verifs2::InvalidateKernelCaches(
    const std::vector<std::string>& extra_paths,
    const std::vector<fs::InodeNum>& extra_inos) {
  if (notifier_ == nullptr) return;
  std::vector<std::string> paths = CollectAllPaths();
  paths.insert(paths.end(), extra_paths.begin(), extra_paths.end());
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
  for (const auto& path : paths) {
    notifier_->InvalEntry(fs::ParentPath(path), fs::Basename(path));
  }
  std::vector<fs::InodeNum> inos = CollectUsedInos();
  inos.insert(inos.end(), extra_inos.begin(), extra_inos.end());
  std::sort(inos.begin(), inos.end());
  inos.erase(std::unique(inos.begin(), inos.end()), inos.end());
  for (fs::InodeNum ino : inos) {
    notifier_->InvalInode(ino);
  }
}

Status Verifs2::IoctlCheckpoint(std::uint64_t key) {
  if (!mounted_) return Errno::kEINVAL;
  pool_.Put(key, SerializeState());
  return Status::Ok();
}

Status Verifs2::IoctlRestore(std::uint64_t key) {
  if (!mounted_) return Errno::kEINVAL;
  auto snapshot = pool_.Take(key);
  if (!snapshot.ok()) return snapshot.error();
  std::vector<std::string> pre_restore_paths = CollectAllPaths();
  std::vector<fs::InodeNum> pre_restore_inos = CollectUsedInos();
  DeserializeState(snapshot.value());
  open_files_.clear();
  if (!options_.bugs.skip_cache_invalidation_on_restore) {
    InvalidateKernelCaches(pre_restore_paths, pre_restore_inos);
  }
  return Status::Ok();
}

Status Verifs2::IoctlDiscard(std::uint64_t key) {
  return pool_.Discard(key);
}

void Verifs2::ImportState(ByteView state) {
  std::vector<std::string> pre_restore_paths = CollectAllPaths();
  std::vector<fs::InodeNum> pre_restore_inos = CollectUsedInos();
  DeserializeState(state);
  open_files_.clear();
  if (!options_.bugs.skip_cache_invalidation_on_restore) {
    InvalidateKernelCaches(pre_restore_paths, pre_restore_inos);
  }
}

}  // namespace mcfs::verifs

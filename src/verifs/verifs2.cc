#include "verifs/verifs2.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "fs/path.h"

namespace mcfs::verifs {
namespace {

// Canonical form of an op path, matching what the legacy full
// invalidation walk emits (see verifs1.cc).
std::string CanonicalPath(const std::string& path) {
  auto split = fs::SplitPath(path);
  if (!split.ok()) return path;
  return fs::JoinPath(split.value());
}

}  // namespace

Verifs2::Verifs2(Verifs2Options options) : options_(std::move(options)) {}

// ---------------------------------------------------------------------------
// Lifecycle

Status Verifs2::Mkfs() {
  if (mounted_) return Errno::kEBUSY;
  inodes_.Assign(1);
  Inode& root = inodes_.Mut(kRootIndex);
  root = Inode{};
  root.used = true;
  root.type = fs::FileType::kDirectory;
  root.mode = 0755;
  root.uid = options_.identity.uid;
  root.gid = options_.identity.gid;
  root.atime_ns = root.mtime_ns = root.ctime_ns = NowNs();
  // Snapshots taken before the reformat fall back to full invalidation.
  inval_log_.Overflow();
  return Status::Ok();
}

Status Verifs2::Mount() {
  if (mounted_) return Errno::kEBUSY;
  if (inodes_.size() == 0) return Errno::kEINVAL;
  mounted_ = true;
  return Status::Ok();
}

Status Verifs2::Unmount() {
  if (!mounted_) return Errno::kEINVAL;
  mounted_ = false;
  open_files_.clear();
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Helpers

Result<std::uint32_t> Verifs2::ResolveIndex(const std::string& path) const {
  if (!mounted_) return Errno::kEINVAL;
  auto split = fs::SplitPath(path);
  if (!split.ok()) return split.error();
  std::uint32_t index = kRootIndex;
  for (const auto& comp : split.value()) {
    const Inode& inode = inodes_.Get(index);
    if (inode.type != fs::FileType::kDirectory) return Errno::kENOTDIR;
    if (!fs::PermissionGranted(ToAttr(index, inode), options_.identity,
                               fs::kXOk)) {
      return Errno::kEACCES;
    }
    auto it = inode.children.find(comp);
    if (it == inode.children.end()) return Errno::kENOENT;
    index = it->second;
  }
  return index;
}

Result<Verifs2::ParentRef> Verifs2::ResolveParentRef(
    const std::string& path) const {
  auto split = fs::SplitPath(path);
  if (!split.ok()) return split.error();
  if (split.value().empty()) return Errno::kEINVAL;
  auto parent = ResolveIndex(fs::ParentPath(path));
  if (!parent.ok()) return parent.error();
  if (inodes_.Get(parent.value()).type != fs::FileType::kDirectory) {
    return Errno::kENOTDIR;
  }
  return ParentRef{parent.value(), split.value().back()};
}

std::uint32_t Verifs2::AllocInode() {
  for (std::uint32_t i = 0; i < inodes_.size(); ++i) {
    if (!inodes_.Get(i).used) return i;
  }
  return inodes_.PushBack();  // no fixed array: the table grows on demand
}

std::uint32_t Verifs2::CountLinks(std::uint32_t index) const {
  std::uint32_t n = 0;
  for (std::uint32_t i = 0; i < inodes_.size(); ++i) {
    const Inode& inode = inodes_.Get(i);
    if (!inode.used || inode.type != fs::FileType::kDirectory) continue;
    for (const auto& [name, child] : inode.children) {
      if (child == index) ++n;
    }
  }
  return n;
}

void Verifs2::ReleaseInodeIfUnlinked(std::uint32_t index) {
  if (index == kRootIndex) return;
  if (CountLinks(index) == 0) inodes_.Mut(index) = Inode{};
}

fs::InodeAttr Verifs2::ToAttr(std::uint32_t index, const Inode& inode) const {
  fs::InodeAttr attr;
  attr.ino = index + 1;
  attr.type = inode.type;
  attr.mode = inode.mode;
  if (inode.type == fs::FileType::kDirectory) {
    std::uint32_t n = 2;
    for (const auto& [name, child] : inode.children) {
      if (inodes_.Get(child).type == fs::FileType::kDirectory) ++n;
    }
    attr.nlink = n;
    attr.size = inode.children.size() * 32;
  } else {
    const std::uint32_t links = CountLinks(index);
    attr.nlink = (links == 0 ? 1 : links) +
                 (options_.bugs.getattr_nlink_off_by_one ? 1 : 0);
    attr.size = inode.size;
  }
  attr.uid = inode.uid;
  attr.gid = inode.gid;
  attr.atime_ns = inode.atime_ns;
  attr.mtime_ns = inode.mtime_ns;
  attr.ctime_ns = inode.ctime_ns;
  attr.blocks = (inode.size + 511) / 512;
  return attr;
}

std::uint64_t Verifs2::TotalDataBytes() const {
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < inodes_.size(); ++i) {
    const Inode& inode = inodes_.Get(i);
    if (inode.used) total += inode.size;
  }
  return total;
}

Status Verifs2::CheckQuota(std::uint64_t additional) const {
  // Unlike VeriFS1, VeriFS2 bounds the total data it stores.
  if (TotalDataBytes() + additional > options_.max_total_bytes) {
    return Errno::kENOSPC;
  }
  return Status::Ok();
}

Result<std::uint32_t> Verifs2::CreateChild(const ParentRef& ref,
                                           fs::FileType type, fs::Mode mode,
                                           const std::string& symlink_target) {
  const Inode& pread = inodes_.Get(ref.parent_index);
  if (!fs::PermissionGranted(ToAttr(ref.parent_index, pread),
                             options_.identity, fs::kWOk)) {
    return Errno::kEACCES;
  }
  if (pread.children.contains(ref.name)) return Errno::kEEXIST;
  const std::uint32_t slot = AllocInode();
  // COW chunks never move on growth, so — unlike the flat vector this
  // replaces — these references survive the PushBack inside AllocInode.
  Inode& parent = inodes_.Mut(ref.parent_index);
  Inode& child = inodes_.Mut(slot);
  child = Inode{};
  child.used = true;
  child.type = type;
  child.mode = static_cast<fs::Mode>(mode & fs::kModeMask);
  child.uid = options_.identity.uid;
  child.gid = options_.identity.gid;
  child.atime_ns = child.mtime_ns = child.ctime_ns = NowNs();
  if (type == fs::FileType::kSymlink) {
    child.buf.Assign(AsBytes(symlink_target));
    child.size = child.buf.size();
  }
  parent.children[ref.name] = slot;
  parent.mtime_ns = NowNs();
  return slot;
}

// ---------------------------------------------------------------------------
// Namespace operations

Result<fs::InodeAttr> Verifs2::GetAttr(const std::string& path) {
  auto index = ResolveIndex(path);
  if (!index.ok()) return index.error();
  return ToAttr(index.value(), inodes_.Get(index.value()));
}

Status Verifs2::Mkdir(const std::string& path, fs::Mode mode) {
  auto parent = ResolveParentRef(path);
  if (!parent.ok()) return parent.error();
  auto child =
      CreateChild(parent.value(), fs::FileType::kDirectory, mode, "");
  if (!child.ok()) return child.error();
  LogEntry(CanonicalPath(path), child.value());
  LogInode(parent.value().parent_index);
  return Status::Ok();
}

Status Verifs2::Rmdir(const std::string& path) {
  if (path == "/") return Errno::kEBUSY;
  auto parent = ResolveParentRef(path);
  if (!parent.ok()) return parent.error();
  const std::uint32_t parent_index = parent.value().parent_index;
  if (!fs::PermissionGranted(
          ToAttr(parent_index, inodes_.Get(parent_index)), options_.identity,
          fs::kWOk)) {
    return Errno::kEACCES;
  }
  const Inode& pread = inodes_.Get(parent_index);
  auto it = pread.children.find(parent.value().name);
  if (it == pread.children.end()) {
    // Dual mutant: the missing-child case mapped to ENOTDIR in BOTH
    // families, so the relative axis agrees on the wrong errno.
    return options_.bugs.dual_rmdir_missing_as_enotdir ? Errno::kENOTDIR
                                                       : Errno::kENOENT;
  }
  const std::uint32_t victim = it->second;
  if (inodes_.Get(victim).type != fs::FileType::kDirectory) {
    return Errno::kENOTDIR;
  }
  if (!inodes_.Get(victim).children.empty()) return Errno::kENOTEMPTY;
  Inode& pnode = inodes_.Mut(parent_index);
  pnode.children.erase(parent.value().name);
  pnode.mtime_ns = NowNs();
  inodes_.Mut(victim) = Inode{};
  LogEntry(CanonicalPath(path), victim);
  LogInode(parent_index);
  return Status::Ok();
}

Status Verifs2::Unlink(const std::string& path) {
  auto parent = ResolveParentRef(path);
  if (!parent.ok()) return parent.error();
  const std::uint32_t parent_index = parent.value().parent_index;
  if (!fs::PermissionGranted(
          ToAttr(parent_index, inodes_.Get(parent_index)), options_.identity,
          fs::kWOk)) {
    return Errno::kEACCES;
  }
  const Inode& pread = inodes_.Get(parent_index);
  auto it = pread.children.find(parent.value().name);
  if (it == pread.children.end()) {
    // Mutant: the "no such file" case mapped to the wrong errno.
    return options_.bugs.unlink_enoent_as_eperm ? Errno::kEPERM
                                                : Errno::kENOENT;
  }
  const std::uint32_t victim = it->second;
  if (inodes_.Get(victim).type == fs::FileType::kDirectory) {
    return Errno::kEISDIR;
  }
  Inode& pnode = inodes_.Mut(parent_index);
  pnode.children.erase(parent.value().name);
  pnode.mtime_ns = NowNs();
  ReleaseInodeIfUnlinked(victim);  // hard links keep the inode alive
  LogEntry(CanonicalPath(path), victim);
  LogInode(parent_index);
  return Status::Ok();
}

Result<std::vector<fs::DirEntry>> Verifs2::ReadDir(const std::string& path) {
  auto index = ResolveIndex(path);
  if (!index.ok()) return index.error();
  if (inodes_.Get(index.value()).type != fs::FileType::kDirectory) {
    return Errno::kENOTDIR;
  }
  if (!fs::PermissionGranted(
          ToAttr(index.value(), inodes_.Get(index.value())),
          options_.identity, fs::kROk)) {
    return Errno::kEACCES;
  }
  Inode& inode = inodes_.Mut(index.value());
  inode.atime_ns = NowNs();
  LogInode(index.value());  // atime moved: the cached attr is stale
  std::vector<fs::DirEntry> out;
  out.reserve(inode.children.size());
  for (const auto& [name, child] : inode.children) {
    out.push_back({name, static_cast<fs::InodeNum>(child + 1),
                   inodes_.Get(child).type});
  }
  // Mutant: reversed listing order. The checker sorts dirents before
  // comparing (§3.4 workaround 2), so this one survives by design.
  if (options_.bugs.readdir_reverse_order) {
    std::reverse(out.begin(), out.end());
  }
  return out;
}

// ---------------------------------------------------------------------------
// File I/O — where historical bugs #3 and #4 live

Result<fs::FileHandle> Verifs2::Open(const std::string& path,
                                     std::uint32_t flags, fs::Mode mode) {
  if (!mounted_) return Errno::kEINVAL;
  auto index = ResolveIndex(path);
  std::uint32_t ino_index;
  if (!index.ok()) {
    if (index.error() != Errno::kENOENT || !(flags & fs::kCreate)) {
      return index.error();
    }
    auto parent = ResolveParentRef(path);
    if (!parent.ok()) return parent.error();
    auto child =
        CreateChild(parent.value(), fs::FileType::kRegular, mode, "");
    if (!child.ok()) return child.error();
    ino_index = child.value();
    LogEntry(CanonicalPath(path), ino_index);
    LogInode(parent.value().parent_index);
  } else {
    if (flags & fs::kCreate && flags & fs::kExcl) return Errno::kEEXIST;
    ino_index = index.value();
    const Inode& inode = inodes_.Get(ino_index);
    const bool want_write = (flags & fs::kAccessModeMask) != fs::kRdOnly;
    if (inode.type == fs::FileType::kDirectory && want_write) {
      return Errno::kEISDIR;
    }
    if (inode.type == fs::FileType::kSymlink) return Errno::kELOOP;
    const std::uint32_t want =
        want_write ? ((flags & fs::kAccessModeMask) == fs::kRdWr
                          ? (fs::kROk | fs::kWOk)
                          : fs::kWOk)
                   : fs::kROk;
    if (!fs::PermissionGranted(ToAttr(ino_index, inode), options_.identity,
                               want)) {
      return Errno::kEACCES;
    }
    if ((flags & fs::kTrunc) && want_write &&
        inode.type == fs::FileType::kRegular) {
      Inode& winode = inodes_.Mut(ino_index);
      winode.size = 0;  // capacity (buf) is retained
      winode.mtime_ns = NowNs();
      LogInode(ino_index);
    }
  }
  const fs::FileHandle fh = next_handle_++;
  open_files_[fh] = OpenFile{ino_index, flags};
  return fh;
}

Status Verifs2::Close(fs::FileHandle fh) {
  if (!mounted_) return Errno::kEINVAL;
  return open_files_.erase(fh) == 1 ? Status::Ok() : Status(Errno::kEBADF);
}

Result<Bytes> Verifs2::Read(fs::FileHandle fh, std::uint64_t offset,
                            std::uint64_t size) {
  if (!mounted_) return Errno::kEINVAL;
  auto it = open_files_.find(fh);
  if (it == open_files_.end()) return Errno::kEBADF;
  if ((it->second.flags & fs::kAccessModeMask) == fs::kWrOnly) {
    return Errno::kEBADF;
  }
  Inode& inode = inodes_.Mut(it->second.ino_index);
  if (inode.type == fs::FileType::kDirectory) return Errno::kEISDIR;
  inode.atime_ns = NowNs();
  LogInode(it->second.ino_index);
  if (offset >= inode.size) return Bytes{};
  const std::uint64_t n = std::min(size, inode.size - offset);
  return inode.buf.ReadBytes(offset, n);
}

Result<std::uint64_t> Verifs2::Write(fs::FileHandle fh, std::uint64_t offset,
                                     ByteView data) {
  if (!mounted_) return Errno::kEINVAL;
  auto it = open_files_.find(fh);
  if (it == open_files_.end()) return Errno::kEBADF;
  if ((it->second.flags & fs::kAccessModeMask) == fs::kRdOnly) {
    return Errno::kEBADF;
  }
  Inode& inode = inodes_.Mut(it->second.ino_index);
  if (it->second.flags & fs::kAppend) offset = inode.size;

  const std::uint64_t required = offset + data.size();
  if (required > inode.size) {
    if (Status s = CheckQuota(required - inode.size); !s.ok()) return s.error();
  }

  if (offset > inode.size) {
    // The write creates a hole. The fixed implementation zeroes the gap
    // (including any stale capacity bytes from a previous, longer
    // incarnation); historical bug #3 left them in place (paper §6).
    if (!options_.bugs.write_hole_no_zero) {
      const std::uint64_t zero_end =
          std::min<std::uint64_t>(offset, inode.buf.size());
      if (zero_end > inode.size) {
        inode.buf.Zero(inode.size, zero_end - inode.size);
      }
    }
    if (offset > inode.buf.size()) {
      inode.buf.resize(offset);  // fresh COW blocks read zero
    }
  }

  if (required > inode.buf.size()) {
    // Grow capacity by doubling, as VeriFS2 did.
    const std::uint64_t new_capacity =
        std::max<std::uint64_t>(std::bit_ceil(required), 64);
    inode.buf.resize(new_capacity);
    // On the growth path even the buggy VeriFS2 updated the size...
    inode.size = required;
  } else if (!options_.bugs.size_update_only_on_capacity_growth) {
    // ...but historical bug #4 forgot to update it on the in-capacity
    // path, leaving appended files short (paper §6). The off-by-one
    // mutant records one byte too few on that same path.
    std::uint64_t new_size = required;
    if (options_.bugs.write_grow_size_off_by_one && required > inode.size) {
      new_size = required - 1;
    }
    inode.size = std::max(inode.size, new_size);
  }

  inode.buf.Write(offset, data);  // no-op for zero-length spans
  inode.mtime_ns = NowNs();
  inode.ctime_ns = inode.mtime_ns;
  LogInode(it->second.ino_index);
  return data.size();
}

Status Verifs2::Truncate(const std::string& path, std::uint64_t size) {
  auto index = ResolveIndex(path);
  if (!index.ok()) return index.error();
  if (inodes_.Get(index.value()).type == fs::FileType::kDirectory) {
    return Errno::kEISDIR;
  }
  if (!fs::PermissionGranted(
          ToAttr(index.value(), inodes_.Get(index.value())),
          options_.identity, fs::kWOk)) {
    return Errno::kEACCES;
  }
  if (size > inodes_.Get(index.value()).size) {
    if (Status s = CheckQuota(size - inodes_.Get(index.value()).size);
        !s.ok()) {
      return s;
    }
  }
  Inode& inode = inodes_.Mut(index.value());
  if (size > inode.size) {
    // VeriFS2 learned this zeroing from VeriFS1's bug #1: the whole
    // reclaimed region must be cleared, including stale capacity bytes
    // below the old buffer end when the buffer also grows. The
    // truncate_expand_stale mutant re-introduces exactly that bug.
    const std::uint64_t zero_end =
        std::min<std::uint64_t>(size, inode.buf.size());
    if (zero_end > inode.size && !options_.bugs.truncate_expand_stale) {
      inode.buf.Zero(inode.size, zero_end - inode.size);
    }
    if (size > inode.buf.size()) {
      inode.buf.resize(size);  // fresh COW blocks read zero
    }
  }
  inode.size = size;
  inode.mtime_ns = NowNs();
  inode.ctime_ns = inode.mtime_ns;
  LogInode(index.value());
  return Status::Ok();
}

Status Verifs2::Fsync(fs::FileHandle fh) {
  if (!mounted_) return Errno::kEINVAL;
  return open_files_.contains(fh) ? Status::Ok() : Status(Errno::kEBADF);
}

// ---------------------------------------------------------------------------
// Attributes

Status Verifs2::Chmod(const std::string& path, fs::Mode mode) {
  auto index = ResolveIndex(path);
  if (!index.ok()) return index.error();
  if (!options_.identity.IsRoot() &&
      options_.identity.uid != inodes_.Get(index.value()).uid) {
    return Errno::kEPERM;
  }
  Inode& inode = inodes_.Mut(index.value());
  // Dual mutant: the old group bits survive the chmod in BOTH families.
  inode.mode = options_.bugs.dual_chmod_keeps_group_bits
                   ? static_cast<fs::Mode>((mode & 0707) |
                                           (inode.mode & 0070))
                   : static_cast<fs::Mode>(mode & fs::kModeMask);
  inode.ctime_ns = NowNs();
  LogInode(index.value());
  return Status::Ok();
}

Status Verifs2::Chown(const std::string& path, std::uint32_t uid,
                      std::uint32_t gid) {
  auto index = ResolveIndex(path);
  if (!index.ok()) return index.error();
  if (!options_.identity.IsRoot()) return Errno::kEPERM;
  Inode& inode = inodes_.Mut(index.value());
  inode.uid = uid;
  inode.gid = gid;
  inode.ctime_ns = NowNs();
  LogInode(index.value());
  return Status::Ok();
}

Result<fs::StatVfs> Verifs2::StatFs() {
  if (!mounted_) return Errno::kEINVAL;
  fs::StatVfs out;
  out.block_size = 4096;
  out.total_bytes = options_.max_total_bytes;
  const std::uint64_t used = TotalDataBytes();
  out.free_bytes = used >= out.total_bytes ? 0 : out.total_bytes - used;
  out.total_inodes = 0xffffffff;
  std::uint64_t used_inodes = 0;
  for (std::uint32_t i = 0; i < inodes_.size(); ++i) {
    if (inodes_.Get(i).used) ++used_inodes;
  }
  out.free_inodes = 0xffffffff - used_inodes;
  return out;
}

bool Verifs2::Supports(fs::FsFeature feature) const {
  switch (feature) {
    case fs::FsFeature::kCheckpointRestore:
    case fs::FsFeature::kRename:
    case fs::FsFeature::kHardLink:
    case fs::FsFeature::kSymlink:
    case fs::FsFeature::kAccess:
    case fs::FsFeature::kXattr:
      return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// The VeriFS2 feature additions

Status Verifs2::Rename(const std::string& from, const std::string& to) {
  if (from == "/" || to == "/") return Errno::kEBUSY;
  if (fs::IsPathPrefix(from, to) && from != to) return Errno::kEINVAL;

  auto src = ResolveParentRef(from);
  if (!src.ok()) return src.error();
  auto dst = ResolveParentRef(to);
  if (!dst.ok()) return dst.error();
  const std::uint32_t src_index = src.value().parent_index;
  const std::uint32_t dst_index = dst.value().parent_index;

  if (!fs::PermissionGranted(ToAttr(src_index, inodes_.Get(src_index)),
                             options_.identity, fs::kWOk) ||
      !fs::PermissionGranted(ToAttr(dst_index, inodes_.Get(dst_index)),
                             options_.identity, fs::kWOk)) {
    return Errno::kEACCES;
  }

  const Inode& src_read = inodes_.Get(src_index);
  auto src_it = src_read.children.find(src.value().name);
  if (src_it == src_read.children.end()) return Errno::kENOENT;
  const std::uint32_t moving = src_it->second;
  if (from == to) return Status::Ok();

  const Inode& dst_read = inodes_.Get(dst_index);
  auto dst_it = dst_read.children.find(dst.value().name);
  bool have_victim = false;
  std::uint32_t victim = 0;
  if (dst_it != dst_read.children.end()) {
    victim = dst_it->second;
    have_victim = true;
    if (inodes_.Get(moving).type == fs::FileType::kDirectory) {
      if (inodes_.Get(victim).type != fs::FileType::kDirectory) {
        return Errno::kENOTDIR;
      }
      if (!inodes_.Get(victim).children.empty()) return Errno::kENOTEMPTY;
    } else if (inodes_.Get(victim).type == fs::FileType::kDirectory) {
      return Errno::kEISDIR;
    }
  }

  const std::string canonical_from = CanonicalPath(from);
  const std::string canonical_to = CanonicalPath(to);
  // A directory move changes every descendant's path: the old paths go
  // stale and negative entries may be cached for the new ones, so both
  // prefixes enter the log. The subtree's shape does not change, so it
  // can be walked before the move.
  if (inodes_.Get(moving).type == fs::FileType::kDirectory) {
    std::vector<std::string> sub;
    CollectPathsRec(moving, canonical_from, &sub);
    CollectPathsRec(moving, canonical_to, &sub);
    for (const auto& p : sub) inval_log_.Append(p, fs::kInvalidInode);
  }

  if (have_victim) {
    inodes_.Mut(dst_index).children.erase(dst.value().name);
    ReleaseInodeIfUnlinked(victim);
    LogInode(victim);  // nlink dropped (or the inode vanished)
  }

  Inode& src_parent = inodes_.Mut(src_index);
  Inode& dst_parent = inodes_.Mut(dst_index);
  src_parent.children.erase(src.value().name);
  dst_parent.children[dst.value().name] = moving;
  // Mutant: the move loses the inode's extended attributes.
  if (options_.bugs.rename_drops_xattrs) inodes_.Mut(moving).xattrs.clear();
  const std::uint64_t t = NowNs();
  src_parent.mtime_ns = t;
  dst_parent.mtime_ns = t;
  LogEntry(canonical_from, moving);
  LogEntry(canonical_to, moving);
  LogInode(src_index);
  LogInode(dst_index);
  return Status::Ok();
}

Status Verifs2::Link(const std::string& existing, const std::string& link) {
  auto src = ResolveIndex(existing);
  if (!src.ok()) return src.error();
  if (inodes_.Get(src.value()).type == fs::FileType::kDirectory) {
    return Errno::kEPERM;
  }
  auto dst = ResolveParentRef(link);
  if (!dst.ok()) return dst.error();
  const std::uint32_t parent_index = dst.value().parent_index;
  if (!fs::PermissionGranted(
          ToAttr(parent_index, inodes_.Get(parent_index)), options_.identity,
          fs::kWOk)) {
    return Errno::kEACCES;
  }
  // Mutant: silently overwrite an existing destination (the displaced
  // inode leaks) instead of failing EEXIST.
  if (inodes_.Get(parent_index).children.contains(dst.value().name) &&
      !options_.bugs.link_allows_overwrite) {
    return Errno::kEEXIST;
  }
  Inode& parent = inodes_.Mut(parent_index);
  parent.children[dst.value().name] = src.value();
  parent.mtime_ns = NowNs();
  inodes_.Mut(src.value()).ctime_ns = NowNs();
  LogEntry(CanonicalPath(link), src.value());
  LogInode(parent_index);
  return Status::Ok();
}

Status Verifs2::Symlink(const std::string& target, const std::string& link) {
  if (target.empty() || target.size() > fs::kPathMax) return Errno::kEINVAL;
  auto parent = ResolveParentRef(link);
  if (!parent.ok()) return parent.error();
  // Mutant: the stored target loses its last character.
  const std::string stored =
      options_.bugs.symlink_truncates_target
          ? target.substr(0, target.size() - 1)
          : target;
  auto child =
      CreateChild(parent.value(), fs::FileType::kSymlink, 0777, stored);
  if (!child.ok()) return child.error();
  LogEntry(CanonicalPath(link), child.value());
  LogInode(parent.value().parent_index);
  return Status::Ok();
}

Result<std::string> Verifs2::ReadLink(const std::string& path) {
  auto index = ResolveIndex(path);
  if (!index.ok()) return index.error();
  const Inode& inode = inodes_.Get(index.value());
  if (inode.type != fs::FileType::kSymlink) return Errno::kEINVAL;
  const Bytes target = inode.buf.ReadBytes(0, inode.size);
  return std::string(target.begin(), target.end());
}

Status Verifs2::Access(const std::string& path, std::uint32_t mode) {
  auto index = ResolveIndex(path);
  if (!index.ok()) return index.error();
  if (mode == fs::kFOk) return Status::Ok();
  return fs::PermissionGranted(
             ToAttr(index.value(), inodes_.Get(index.value())),
             options_.identity, mode)
             ? Status::Ok()
             : Status(Errno::kEACCES);
}

Status Verifs2::SetXattr(const std::string& path, const std::string& name,
                         ByteView value) {
  if (name.empty() || name.size() > fs::kNameMax) return Errno::kEINVAL;
  auto index = ResolveIndex(path);
  if (!index.ok()) return index.error();
  Inode& inode = inodes_.Mut(index.value());
  inode.xattrs[name] = Bytes(value.begin(), value.end());
  inode.ctime_ns = NowNs();
  LogInode(index.value());
  return Status::Ok();
}

Result<Bytes> Verifs2::GetXattr(const std::string& path,
                                const std::string& name) {
  auto index = ResolveIndex(path);
  if (!index.ok()) return index.error();
  const Inode& inode = inodes_.Get(index.value());
  auto it = inode.xattrs.find(name);
  if (it == inode.xattrs.end()) return Errno::kENODATA;
  return it->second;
}

Result<std::vector<std::string>> Verifs2::ListXattr(const std::string& path) {
  auto index = ResolveIndex(path);
  if (!index.ok()) return index.error();
  const Inode& inode = inodes_.Get(index.value());
  std::vector<std::string> names;
  names.reserve(inode.xattrs.size());
  for (const auto& [name, value] : inode.xattrs) names.push_back(name);
  return names;
}

Status Verifs2::RemoveXattr(const std::string& path,
                            const std::string& name) {
  auto index = ResolveIndex(path);
  if (!index.ok()) return index.error();
  if (!inodes_.Get(index.value()).xattrs.contains(name)) {
    // Mutant: removing an absent attribute claims success.
    return options_.bugs.removexattr_ok_when_missing
               ? Status::Ok()
               : Status(Errno::kENODATA);
  }
  Inode& inode = inodes_.Mut(index.value());
  inode.xattrs.erase(name);
  inode.ctime_ns = NowNs();
  LogInode(index.value());
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Checkpoint / restore

Bytes Verifs2::SerializeState() const {
  ByteWriter w;
  w.PutU32(inodes_.size());
  for (std::uint32_t i = 0; i < inodes_.size(); ++i) {
    const Inode& inode = inodes_.Get(i);
    w.PutU8(inode.used ? 1 : 0);
    if (!inode.used) continue;
    w.PutU8(static_cast<std::uint8_t>(inode.type));
    w.PutU16(inode.mode);
    w.PutU32(inode.uid);
    w.PutU32(inode.gid);
    w.PutU64(inode.atime_ns);
    w.PutU64(inode.mtime_ns);
    w.PutU64(inode.ctime_ns);
    w.PutU64(inode.size);
    // Full physical buffer, as VeriFS1 does (see verifs1.cc): capacity
    // contents are part of the daemon's state.
    w.PutBlob(inode.buf.ToBytes());
    w.PutU32(static_cast<std::uint32_t>(inode.children.size()));
    for (const auto& [name, child] : inode.children) {
      w.PutString(name);
      w.PutU32(child);
    }
    w.PutU32(static_cast<std::uint32_t>(inode.xattrs.size()));
    for (const auto& [name, value] : inode.xattrs) {
      w.PutString(name);
      w.PutBlob(value);
    }
  }
  w.PutU64(op_counter_);
  return w.Take();
}

void Verifs2::DeserializeState(ByteView state) {
  ByteReader r(state);
  const std::uint32_t count = r.GetU32();
  inodes_.Assign(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (r.GetU8() == 0) continue;
    Inode& inode = inodes_.Mut(i);
    inode.used = true;
    inode.type = static_cast<fs::FileType>(r.GetU8());
    inode.mode = r.GetU16();
    inode.uid = r.GetU32();
    inode.gid = r.GetU32();
    inode.atime_ns = r.GetU64();
    inode.mtime_ns = r.GetU64();
    inode.ctime_ns = r.GetU64();
    inode.size = r.GetU64();
    inode.buf.Assign(r.GetBlob());  // full physical buffer, stale tail too
    const std::uint32_t nchildren = r.GetU32();
    for (std::uint32_t c = 0; c < nchildren; ++c) {
      std::string name = r.GetString();
      inode.children[std::move(name)] = r.GetU32();
    }
    const std::uint32_t nxattrs = r.GetU32();
    for (std::uint32_t x = 0; x < nxattrs; ++x) {
      std::string name = r.GetString();
      inode.xattrs[std::move(name)] = r.GetBlob();
    }
  }
  op_counter_ = r.GetU64();
}

void Verifs2::CollectPathsRec(std::uint32_t index, const std::string& prefix,
                              std::vector<std::string>* out) const {
  const Inode& inode = inodes_.Get(index);
  for (const auto& [name, child] : inode.children) {
    const std::string path = prefix == "/" ? "/" + name : prefix + "/" + name;
    out->push_back(path);
    if (inodes_.Get(child).type == fs::FileType::kDirectory) {
      CollectPathsRec(child, path, out);
    }
  }
}

std::vector<std::string> Verifs2::CollectAllPaths() const {
  std::vector<std::string> out;
  if (inodes_.size() != 0) CollectPathsRec(kRootIndex, "/", &out);
  return out;
}

std::vector<fs::InodeNum> Verifs2::CollectUsedInos() const {
  std::vector<fs::InodeNum> inos;
  for (std::uint32_t i = 0; i < inodes_.size(); ++i) {
    if (inodes_.Get(i).used) inos.push_back(static_cast<fs::InodeNum>(i + 1));
  }
  return inos;
}

void Verifs2::InvalidateKernelCaches(
    const std::vector<std::string>& extra_paths,
    const std::vector<fs::InodeNum>& extra_inos) {
  if (notifier_ == nullptr) return;
  std::vector<std::string> paths = CollectAllPaths();
  paths.insert(paths.end(), extra_paths.begin(), extra_paths.end());
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
  for (const auto& path : paths) {
    notifier_->InvalEntry(fs::ParentPath(path), fs::Basename(path));
  }
  std::vector<fs::InodeNum> inos = CollectUsedInos();
  inos.insert(inos.end(), extra_inos.begin(), extra_inos.end());
  std::sort(inos.begin(), inos.end());
  inos.erase(std::unique(inos.begin(), inos.end()), inos.end());
  for (fs::InodeNum ino : inos) {
    notifier_->InvalInode(ino);
  }
}

void Verifs2::EmitInvalRecords(const std::vector<InvalRecord>& records) {
  if (notifier_ == nullptr) return;
  std::vector<std::string> paths;
  std::vector<fs::InodeNum> inos;
  for (const InvalRecord& rec : records) {
    if (!rec.path.empty()) paths.push_back(rec.path);
    if (rec.ino != fs::kInvalidInode) inos.push_back(rec.ino);
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
  for (const auto& path : paths) {
    notifier_->InvalEntry(fs::ParentPath(path), fs::Basename(path));
  }
  std::sort(inos.begin(), inos.end());
  inos.erase(std::unique(inos.begin(), inos.end()), inos.end());
  for (fs::InodeNum ino : inos) {
    notifier_->InvalInode(ino);
  }
}

void Verifs2::CompactInvalLog() {
  if (inval_log_.record_count() <= kMaxInvalRecords) return;
  std::uint64_t min_pos = inval_log_.End();
  for (const auto& [id, snap] : pool_.entries()) {
    if (!snap.deep) min_pos = std::min(min_pos, snap.inval_pos);
  }
  inval_log_.TrimBelow(min_pos);
  // Still over the cap: some snapshot is ancient. Overflow and let its
  // eventual restore take the full-invalidation path.
  if (inval_log_.record_count() > kMaxInvalRecords) inval_log_.Overflow();
}

Result<fs::SnapshotId> Verifs2::Checkpoint() {
  if (!mounted_) return Errno::kEINVAL;
  CompactInvalLog();
  Snapshot snap;
  if (options_.cow_snapshots) {
    snap.root = inodes_.Snapshot();
    snap.op_counter = op_counter_;
    snap.inval_pos = inval_log_.End();
  } else {
    snap.deep = true;
    snap.deep_image = SerializeState();
  }
  return pool_.Add(std::move(snap));
}

Status Verifs2::Restore(fs::SnapshotId id) {
  if (!mounted_) return Errno::kEINVAL;
  const Snapshot* snap = pool_.Find(id);
  if (snap == nullptr) return Errno::kENOENT;

  if (snap->deep || !inval_log_.Covers(snap->inval_pos)) {
    // Full-state path: deep-copy snapshots, or COW snapshots whose log
    // prefix was trimmed/overflowed (see verifs1.cc).
    std::vector<std::string> pre_paths = CollectAllPaths();
    std::vector<fs::InodeNum> pre_inos = CollectUsedInos();
    if (snap->deep) {
      DeserializeState(snap->deep_image);
    } else {
      inodes_.Restore(snap->root);
      op_counter_ = snap->op_counter;
    }
    open_files_.clear();
    inval_log_.Overflow();
    if (!options_.bugs.skip_cache_invalidation_on_restore) {
      InvalidateKernelCaches(pre_paths, pre_inos);
    }
    return Status::Ok();
  }

  // O(dirty) path: invalidate exactly the deduped records written since
  // the snapshot. The re-append keeps forward restores sound but is
  // only needed while a later-positioned snapshot is live — skipping it
  // otherwise keeps the log flat across backtracking walks (see
  // verifs1.cc).
  std::vector<InvalRecord> tail = inval_log_.Since(snap->inval_pos);
  DedupInvalRecords(tail);
  inodes_.Restore(snap->root);
  op_counter_ = snap->op_counter;
  open_files_.clear();
  if (AnyCowSnapshotAfter(pool_.entries(), snap->inval_pos)) {
    inval_log_.ReAppend(tail);
    CompactInvalLog();
  } else {
    // No one can restore forward past this position: rewind the log to
    // it so repeated bounces off one snapshot stay O(dirty).
    inval_log_.TruncateTo(snap->inval_pos);
  }
  if (!options_.bugs.skip_cache_invalidation_on_restore) {
    EmitInvalRecords(tail);
  }
  return Status::Ok();
}

Status Verifs2::Discard(fs::SnapshotId id) {
  Status s = pool_.Discard(id);
  if (s.ok()) CompactInvalLog();
  return s;
}

fs::SnapshotStats Verifs2::Stats() const {
  return ComputeSnapshotStats<Inode>(
      pool_.entries(), inodes_.Snapshot(), [](const Inode& inode) {
        std::uint64_t extra = 0;
        for (const auto& [name, child] : inode.children) {
          extra += name.size() + 32;  // map-node overhead estimate
        }
        for (const auto& [name, value] : inode.xattrs) {
          extra += name.size() + value.size() + 32;
        }
        return extra;
      });
}

void Verifs2::ImportState(ByteView state) {
  std::vector<std::string> pre_paths = CollectAllPaths();
  std::vector<fs::InodeNum> pre_inos = CollectUsedInos();
  DeserializeState(state);
  open_files_.clear();
  inval_log_.Overflow();  // untracked rollback, same as a deep restore
  if (!options_.bugs.skip_cache_invalidation_on_restore) {
    InvalidateKernelCaches(pre_paths, pre_inos);
  }
}

}  // namespace mcfs::verifs

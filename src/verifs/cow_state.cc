#include "verifs/cow_state.h"

#include <cstring>

namespace mcfs::verifs {

CowBlock& CowBuffer::MutBlock(std::size_t i) {
  CowBlockPtr& block = blocks_[i];
  if (block.use_count() > 1) block = std::make_shared<CowBlock>(*block);
  return *block;
}

void CowBuffer::resize(std::uint64_t n) {
  if (n <= physical_) return;  // physical buffers never shrink
  std::size_t want = (n + kCowBlockSize - 1) / kCowBlockSize;
  while (blocks_.size() < want) {
    blocks_.push_back(std::make_shared<CowBlock>());  // value-init: zeroed
  }
  // Bytes in [physical_, n) inside already-allocated blocks are zero by
  // the class invariant, so no clone or memset is needed here.
  physical_ = n;
}

void CowBuffer::Zero(std::uint64_t off, std::uint64_t n) {
  std::uint64_t end = off + n;
  while (off < end) {
    std::size_t bi = off / kCowBlockSize;
    std::size_t bo = off % kCowBlockSize;
    std::size_t len = std::min<std::uint64_t>(kCowBlockSize - bo, end - off);
    std::memset(MutBlock(bi).data() + bo, 0, len);
    off += len;
  }
}

void CowBuffer::Write(std::uint64_t off, ByteView data) {
  if (data.empty()) return;
  if (off + data.size() > physical_) resize(off + data.size());
  std::uint64_t pos = off;
  const std::uint8_t* src = data.data();
  std::uint64_t left = data.size();
  while (left > 0) {
    std::size_t bi = pos / kCowBlockSize;
    std::size_t bo = pos % kCowBlockSize;
    std::size_t len = std::min<std::uint64_t>(kCowBlockSize - bo, left);
    std::memcpy(MutBlock(bi).data() + bo, src, len);
    pos += len;
    src += len;
    left -= len;
  }
}

Bytes CowBuffer::ReadBytes(std::uint64_t off, std::uint64_t n) const {
  Bytes out(n);
  std::uint64_t pos = off;
  std::uint8_t* dst = out.data();
  std::uint64_t left = n;
  while (left > 0) {
    std::size_t bi = pos / kCowBlockSize;
    std::size_t bo = pos % kCowBlockSize;
    std::size_t len = std::min<std::uint64_t>(kCowBlockSize - bo, left);
    std::memcpy(dst, blocks_[bi]->data() + bo, len);
    pos += len;
    dst += len;
    left -= len;
  }
  return out;
}

void CowBuffer::Assign(ByteView data) {
  blocks_.clear();
  physical_ = 0;
  if (!data.empty()) Write(0, data);
}

Bytes CowBuffer::ToBytes() const { return ReadBytes(0, physical_); }

void CowBuffer::clear() {
  blocks_.clear();
  physical_ = 0;
}

}  // namespace mcfs::verifs

// The registered mutation corpus: every seeded fault the checker is
// expected to catch (or, for documented blind spots, to miss), each a
// single VerifsBugs flag with a name and a detection hint.
//
// This is the checker's self-verification surface (the paper's checker —
// like the Augsburg VFS formal model it cites — is itself unverified):
// the mutation campaign (mcfs::core::RunMutationCampaign) explores every
// mutant against a fixed reference twin and measures the kill rate.
#pragma once

#include <string>
#include <vector>

#include "verifs/bugs.h"

namespace mcfs::verifs {

struct Mutant {
  // Stable identifier, used in reports and --mutant selectors; matches
  // the VerifsBugs field name.
  std::string name;
  // How the fault should surface (for humans reading the report).
  std::string hint;
  // Mutated file system: VeriFS2 when true, else VeriFS1.
  bool verifs2 = false;
  // Historical paper bug (§6) rather than a synthetic mutant.
  bool historical = false;
  // Whether the checker is expected to catch it. The only current
  // exception is readdir_reverse_order: the §3.4 dirent-sorting
  // workaround makes entry order unobservable by design.
  bool expect_detected = true;
  // The flag set that arms exactly this mutant.
  VerifsBugs bugs;
  // Crash mutant: the fault lives in a kernel file system's persistence
  // path (not in VeriFS) and is only observable after a crash + remount,
  // so the campaign must run it under the crash-exploration mode.
  bool crash = false;
  // Dual mutant: the same bug is seeded into BOTH VeriFS families. The
  // relative axis pairs VeriFS1-with-bug against VeriFS2-with-bug, which
  // agree on the wrong behaviour, so expect_detected is false by
  // construction — only the spec axis (FsKind::kSpec) can kill these.
  // `verifs2` names the family the spec axis pairs against.
  bool dual = false;
  // Crash mutants only: which kernel file system carries the fault
  // ("jffs2f" or "ext4f"); `verifs2` is meaningless for these.
  std::string crash_fs;
};

// The full corpus: 4 historical bugs + 16 synthetic mutants + 2 crash
// mutants + 2 dual mutants.
const std::vector<Mutant>& MutationCorpus();

// Corpus lookup by name; nullptr when unknown.
const Mutant* FindMutant(const std::string& name);

}  // namespace mcfs::verifs

// Handle-allocating snapshot pool shared by VeriFS1/VeriFS2, plus the
// deduplicating byte accounting over its structurally-shared entries.
//
// Before the COW refactor this pool stored one serialized full-state
// image per caller-chosen key and ioctl_RESTORE *took* (consumed) the
// entry. Entries are now owned by fs::SnapshotId handles, restore is
// non-consuming, and a COW entry is just a root pointer — the bytes it
// "holds" are whatever chunks/blocks the live state has since diverged
// from, which is what ComputeSnapshotStats measures.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>

#include "fs/checkpointable.h"
#include "util/bytes.h"
#include "verifs/cow_state.h"

namespace mcfs::verifs {

// One pool entry. COW snapshots hold a root + counters; deep-copy mode
// (cow_snapshots = false, kept as the paper's original copy-the-world
// baseline and for the differential suite) holds a serialized image.
template <typename Inode>
struct CowSnapshot {
  typename CowTable<Inode>::Root root;
  std::uint64_t op_counter = 0;
  // Invalidation-log position at checkpoint time.
  std::uint64_t inval_pos = 0;
  Bytes deep_image;
  bool deep = false;
};

template <typename Snapshot>
class SnapshotPool {
 public:
  fs::SnapshotId Add(Snapshot snapshot) {
    fs::SnapshotId id = next_++;
    snapshots_.emplace(id, std::move(snapshot));
    return id;
  }

  const Snapshot* Find(fs::SnapshotId id) const {
    auto it = snapshots_.find(id);
    return it == snapshots_.end() ? nullptr : &it->second;
  }

  Status Discard(fs::SnapshotId id) {
    return snapshots_.erase(id) != 0 ? Status::Ok() : Errno::kENOENT;
  }

  std::uint64_t count() const { return snapshots_.size(); }

  void clear() { snapshots_.clear(); }

  const std::map<fs::SnapshotId, Snapshot>& entries() const {
    return snapshots_;
  }

 private:
  std::map<fs::SnapshotId, Snapshot> snapshots_;
  fs::SnapshotId next_ = 1;
};

// True iff any live COW snapshot's log position lies strictly after
// `pos`. Only such a snapshot — taken on a branch that a restore to
// `pos` abandons — needs the undone suffix re-logged; when none
// exists, the restore can skip the re-append entirely and the log
// stays flat across backtrack-heavy walks.
template <typename Inode>
bool AnyCowSnapshotAfter(
    const std::map<fs::SnapshotId, CowSnapshot<Inode>>& snapshots,
    std::uint64_t pos) {
  for (const auto& [id, snap] : snapshots) {
    if (!snap.deep && snap.inval_pos > pos) return true;
  }
  return false;
}

// Deduplicating byte accounting over every snapshot root plus the live
// root. Each distinct chunk/block node is counted once; a node is
// "shared" if more than one snapshot holds it or the live state still
// uses it (discarding a single snapshot cannot free it), "exclusive"
// if exactly one snapshot holds it and the live state does not.
// `inode_extra_bytes(inode)` charges per-inode heap state the chunk's
// sizeof cannot see (directory entries, xattrs); data blocks are
// charged separately at kCowBlockSize each.
template <typename Inode, typename ExtraFn>
fs::SnapshotStats ComputeSnapshotStats(
    const std::map<fs::SnapshotId, CowSnapshot<Inode>>& snapshots,
    const typename CowTable<Inode>::Root& live, ExtraFn&& inode_extra_bytes) {
  using Chunk = typename CowTable<Inode>::Chunk;
  struct NodeInfo {
    std::uint64_t bytes = 0;
    std::uint32_t snap_refs = 0;
    bool live = false;
    std::uint64_t last_visit = 0;
  };
  std::unordered_map<const void*, NodeInfo> nodes;
  std::uint64_t visit = 0;

  auto touch = [&](const void* p, std::uint64_t bytes, bool is_live) {
    NodeInfo& info = nodes[p];
    if (info.last_visit == visit) return;  // count once per root
    info.last_visit = visit;
    info.bytes = bytes;
    if (is_live) {
      info.live = true;
    } else {
      ++info.snap_refs;
    }
  };

  auto visit_root = [&](const typename CowTable<Inode>::Root& root,
                        bool is_live) {
    ++visit;
    for (const auto& chunk : root.chunks) {
      if (chunk == nullptr) continue;
      std::uint64_t chunk_bytes = sizeof(Chunk);
      for (const Inode& inode : chunk->slots) {
        chunk_bytes += inode_extra_bytes(inode);
      }
      touch(chunk.get(), chunk_bytes, is_live);
      for (const Inode& inode : chunk->slots) {
        for (const CowBlockPtr& block : inode.buf.blocks()) {
          if (block != nullptr) touch(block.get(), kCowBlockSize, is_live);
        }
      }
    }
  };

  fs::SnapshotStats stats;
  stats.count = snapshots.size();
  for (const auto& [id, snap] : snapshots) {
    if (snap.deep) {
      stats.total_bytes += snap.deep_image.size();
      stats.exclusive_bytes += snap.deep_image.size();
    } else {
      visit_root(snap.root, /*is_live=*/false);
    }
  }
  visit_root(live, /*is_live=*/true);

  for (const auto& [p, info] : nodes) {
    if (info.snap_refs == 0) continue;  // live-only node: not pool state
    stats.total_bytes += info.bytes;
    if (info.snap_refs == 1 && !info.live) {
      stats.exclusive_bytes += info.bytes;
    } else {
      stats.shared_bytes += info.bytes;
    }
  }
  return stats;
}

}  // namespace mcfs::verifs

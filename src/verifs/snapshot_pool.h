// The snapshot pool behind VeriFS's ioctl_CHECKPOINT / ioctl_RESTORE
// (paper §5): a keyed store of serialized file-system states. The model
// checker owns the keys; VeriFS owns the bytes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "util/bytes.h"
#include "util/result.h"

namespace mcfs::verifs {

class SnapshotPool {
 public:
  // Stores (or replaces) the snapshot under `key`.
  void Put(std::uint64_t key, Bytes state);

  // Returns the snapshot under `key` without removing it.
  std::optional<ByteView> Peek(std::uint64_t key) const;

  // Removes and returns the snapshot under `key` (restore discards the
  // snapshot, paper §5).
  Result<Bytes> Take(std::uint64_t key);

  // Drops the snapshot under `key`; ENOENT if absent.
  Status Discard(std::uint64_t key);

  std::uint64_t count() const { return snapshots_.size(); }
  std::uint64_t total_bytes() const { return total_bytes_; }

 private:
  std::map<std::uint64_t, Bytes> snapshots_;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace mcfs::verifs

// VeriFS1: the paper's initial MCFS-enabled RAM file system (§5).
//
// Deliberately minimal, matching the paper's description:
//   * a fixed-length inode array;
//   * a contiguous memory buffer attached to each inode as file data
//     (physical bytes never shrink — which is why forgetting to zero on
//     expansion exposes stale data, the first historical bug);
//   * a limited operation set: NO access(), rename(), symbolic or hard
//     links, or extended attributes;
//   * no limit on the total amount of data stored;
//   * native checkpoint/restore via a snapshot pool.
//
// State is structurally shared (src/verifs/cow_state.h): the inode
// array lives in refcounted chunks and file data in refcounted blocks,
// so Checkpoint() copies O(#chunks) pointers, each mutation clones only
// the chunk/block it writes, and Restore() is a root swap. The
// `cow_snapshots` option falls back to the original copy-the-world
// serialization for differential testing.
//
// Because it is a user-space (FUSE-style) file system, a restore must
// tell the kernel to invalidate its caches through the KernelNotifier;
// the injectable bug flags can suppress that (historical bug #2). With
// COW snapshots the invalidation is O(dirty): every mutation appends
// the (path, inode) it touched to an InvalLog, and restore invalidates
// only the records written since the snapshot was taken.
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "fs/checkpointable.h"
#include "fs/filesystem.h"
#include "fs/kernel_notifier.h"
#include "fs/perms.h"
#include "verifs/bugs.h"
#include "verifs/cow_state.h"
#include "verifs/snapshot_pool.h"

namespace mcfs::verifs {

struct Verifs1Options {
  std::uint32_t inode_count = 64;  // the fixed-length inode array
  fs::Identity identity;
  VerifsBugs bugs;
  // Structurally-shared snapshots (O(1) checkpoint, O(dirty) restore).
  // False = the original deep-copy serialization per snapshot.
  bool cow_snapshots = true;
};

class Verifs1 : public fs::FileSystem, public fs::CheckpointableFs {
 public:
  explicit Verifs1(Verifs1Options options = {});

  // Wires the kernel-cache invalidation callbacks used on restore.
  void SetNotifier(fs::KernelNotifier* notifier) { notifier_ = notifier; }

  // FileSystem.
  Status Mkfs() override;
  Status Mount() override;
  Status Unmount() override;
  bool IsMounted() const override { return mounted_; }

  Result<fs::InodeAttr> GetAttr(const std::string& path) override;
  Status Mkdir(const std::string& path, fs::Mode mode) override;
  Status Rmdir(const std::string& path) override;
  Status Unlink(const std::string& path) override;
  Result<std::vector<fs::DirEntry>> ReadDir(const std::string& path) override;

  Result<fs::FileHandle> Open(const std::string& path, std::uint32_t flags,
                              fs::Mode mode) override;
  Status Close(fs::FileHandle fh) override;
  Result<Bytes> Read(fs::FileHandle fh, std::uint64_t offset,
                     std::uint64_t size) override;
  Result<std::uint64_t> Write(fs::FileHandle fh, std::uint64_t offset,
                              ByteView data) override;
  Status Truncate(const std::string& path, std::uint64_t size) override;
  Status Fsync(fs::FileHandle fh) override;

  Status Chmod(const std::string& path, fs::Mode mode) override;
  Status Chown(const std::string& path, std::uint32_t uid,
               std::uint32_t gid) override;
  Result<fs::StatVfs> StatFs() override;

  bool Supports(fs::FsFeature feature) const override;
  // Rename/Link/Symlink/Access/xattrs inherit the ENOTSUP defaults:
  // VeriFS1 genuinely lacks them (paper §5).

  std::string TypeName() const override { return "verifs1"; }

  // CheckpointableFs: first-class snapshot handles. Restore preserves
  // the snapshot; the keyed Ioctl* shims from the base class keep the
  // paper's consuming ioctl semantics on top of these.
  Result<fs::SnapshotId> Checkpoint() override;
  Status Restore(fs::SnapshotId id) override;
  Status Discard(fs::SnapshotId id) override;
  fs::SnapshotStats Stats() const override;

  // Raw state export/import — what a process- or VM-level snapshotter
  // captures (the daemon's memory image). Import behaves like a restore,
  // including kernel-cache invalidation.
  Bytes ExportState() const { return SerializeState(); }
  void ImportState(ByteView state);

 protected:
  struct Inode {
    bool used = false;
    fs::FileType type = fs::FileType::kRegular;
    fs::Mode mode = 0;
    std::uint32_t uid = 0;
    std::uint32_t gid = 0;
    std::uint64_t atime_ns = 0;
    std::uint64_t mtime_ns = 0;
    std::uint64_t ctime_ns = 0;
    // File payload: `buf` is the contiguous buffer (never shrunk),
    // `size` the logical file length.
    CowBuffer buf;
    std::uint64_t size = 0;
    // Directory payload: name -> inode index.
    std::map<std::string, std::uint32_t> children;
    std::uint32_t parent = 0;  // inode index of the containing directory
  };
  using Table = CowTable<Inode>;
  using Snapshot = CowSnapshot<Inode>;

  struct OpenFile {
    std::uint32_t ino_index;
    std::uint32_t flags;
  };

  static constexpr std::uint32_t kRootIndex = 0;

  // Grows (or shrinks) the logical file size. The correct implementation
  // zeroes [old_size, new_size) on growth; bug #1 skips it.
  void SetFileSize(Inode& inode, std::uint64_t new_size, bool zero_growth);

  Result<std::uint32_t> ResolveIndex(const std::string& path) const;
  struct ParentRef {
    std::uint32_t parent_index;
    std::string name;
  };
  Result<ParentRef> ResolveParentRef(const std::string& path) const;
  Result<std::uint32_t> AllocInode();
  std::uint64_t NowNs() { return ++op_counter_ * 1000; }
  fs::InodeAttr ToAttr(std::uint32_t index, const Inode& inode) const;
  std::uint32_t ComputeNlink(const Inode& inode) const;

  // Full-state serialization (deep-copy snapshots, ExportState, and the
  // VM/CRIU snapshotters).
  Bytes SerializeState() const;
  void DeserializeState(ByteView state);
  // Mutant restore_skips_one_inode: unlinks the highest-numbered
  // non-root inode from the just-restored image.
  void DropOneInodeAfterRestore();
  // Emits InvalEntry/InvalInode for everything in the current namespace
  // plus the pre-restore paths/inodes handed in (entries from the
  // abandoned timeline must be dropped too, or slot reuse resurrects
  // them as stale cache hits). The full-state fallback; COW restores
  // use the InvalLog suffix instead.
  void InvalidateKernelCaches(const std::vector<std::string>& extra_paths,
                              const std::vector<fs::InodeNum>& extra_inos);
  std::vector<fs::InodeNum> CollectUsedInos() const;
  std::vector<std::string> CollectAllPaths() const;
  void CollectPathsRec(std::uint32_t index, const std::string& prefix,
                       std::vector<std::string>* out) const;

  // --- invalidation log plumbing (O(dirty) restore) ---
  // Records a namespace mutation: `path` for the dentry cache plus the
  // inode (1-based) for the attr cache.
  void LogEntry(const std::string& path, std::uint32_t ino_index) {
    inval_log_.Append(path, static_cast<fs::InodeNum>(ino_index) + 1);
  }
  // Records an attribute/data-only mutation.
  void LogInode(std::uint32_t ino_index) {
    inval_log_.Append({}, static_cast<fs::InodeNum>(ino_index) + 1);
  }
  // Emits invalidations for records in [pos, End) after deduping.
  void EmitInvalRecords(const std::vector<InvalRecord>& records);
  // Trims the log to the oldest live snapshot, or overflows it.
  void CompactInvalLog();
  // Full path of an inode via the parent chain (for mutant logging).
  std::string PathOfIndex(std::uint32_t index) const;

  Verifs1Options options_;
  bool mounted_ = false;
  Table inodes_;  // the fixed-length array, in COW chunks
  std::unordered_map<fs::FileHandle, OpenFile> open_files_;
  fs::FileHandle next_handle_ = 1;
  std::uint64_t op_counter_ = 0;
  SnapshotPool<Snapshot> pool_;
  InvalLog inval_log_;
  fs::KernelNotifier* notifier_ = nullptr;
};

}  // namespace mcfs::verifs

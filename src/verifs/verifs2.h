// VeriFS2: the second-generation MCFS-enabled RAM file system (§5-§6).
//
// Developed, per the paper, by model-checking it against VeriFS1 to add
// the features VeriFS1 lacked:
//   * rename(), hard links, symbolic links, access(), extended attributes;
//   * a dynamically grown inode table (no fixed array);
//   * capacity-managed file buffers that grow by doubling — the substrate
//     of historical bug #4 (size updated only when the buffer grew);
//   * a configurable limit on total stored data (VeriFS1 had none).
//
// Shares the COW snapshot substrate (src/verifs/cow_state.h) and
// handle-allocating pool with VeriFS1: Checkpoint() is a root copy,
// mutations clone only the chunk/block they write, Restore() is a root
// swap plus O(dirty) kernel-cache invalidation from the InvalLog.
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "fs/checkpointable.h"
#include "fs/filesystem.h"
#include "fs/kernel_notifier.h"
#include "fs/perms.h"
#include "verifs/bugs.h"
#include "verifs/cow_state.h"
#include "verifs/snapshot_pool.h"

namespace mcfs::verifs {

struct Verifs2Options {
  std::uint64_t max_total_bytes = 8ull * 1024 * 1024;  // data quota
  fs::Identity identity;
  VerifsBugs bugs;
  // Structurally-shared snapshots (O(1) checkpoint, O(dirty) restore).
  // False = the original deep-copy serialization per snapshot.
  bool cow_snapshots = true;
};

class Verifs2 final : public fs::FileSystem, public fs::CheckpointableFs {
 public:
  explicit Verifs2(Verifs2Options options = {});

  void SetNotifier(fs::KernelNotifier* notifier) { notifier_ = notifier; }

  // FileSystem.
  Status Mkfs() override;
  Status Mount() override;
  Status Unmount() override;
  bool IsMounted() const override { return mounted_; }

  Result<fs::InodeAttr> GetAttr(const std::string& path) override;
  Status Mkdir(const std::string& path, fs::Mode mode) override;
  Status Rmdir(const std::string& path) override;
  Status Unlink(const std::string& path) override;
  Result<std::vector<fs::DirEntry>> ReadDir(const std::string& path) override;

  Result<fs::FileHandle> Open(const std::string& path, std::uint32_t flags,
                              fs::Mode mode) override;
  Status Close(fs::FileHandle fh) override;
  Result<Bytes> Read(fs::FileHandle fh, std::uint64_t offset,
                     std::uint64_t size) override;
  Result<std::uint64_t> Write(fs::FileHandle fh, std::uint64_t offset,
                              ByteView data) override;
  Status Truncate(const std::string& path, std::uint64_t size) override;
  Status Fsync(fs::FileHandle fh) override;

  Status Chmod(const std::string& path, fs::Mode mode) override;
  Status Chown(const std::string& path, std::uint32_t uid,
               std::uint32_t gid) override;
  Result<fs::StatVfs> StatFs() override;

  bool Supports(fs::FsFeature feature) const override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Link(const std::string& existing, const std::string& link) override;
  Status Symlink(const std::string& target, const std::string& link) override;
  Result<std::string> ReadLink(const std::string& path) override;
  Status Access(const std::string& path, std::uint32_t mode) override;
  Status SetXattr(const std::string& path, const std::string& name,
                  ByteView value) override;
  Result<Bytes> GetXattr(const std::string& path,
                         const std::string& name) override;
  Result<std::vector<std::string>> ListXattr(const std::string& path) override;
  Status RemoveXattr(const std::string& path, const std::string& name) override;

  std::string TypeName() const override { return "verifs2"; }

  // CheckpointableFs: first-class snapshot handles; the keyed Ioctl*
  // shims from the base class provide the paper's consuming semantics.
  Result<fs::SnapshotId> Checkpoint() override;
  Status Restore(fs::SnapshotId id) override;
  Status Discard(fs::SnapshotId id) override;
  fs::SnapshotStats Stats() const override;

  // Raw state export/import for process/VM snapshotters (see Verifs1).
  Bytes ExportState() const { return SerializeState(); }
  void ImportState(ByteView state);

 private:
  struct Inode {
    bool used = false;
    fs::FileType type = fs::FileType::kRegular;
    fs::Mode mode = 0;
    std::uint32_t uid = 0;
    std::uint32_t gid = 0;
    std::uint64_t atime_ns = 0;
    std::uint64_t mtime_ns = 0;
    std::uint64_t ctime_ns = 0;
    CowBuffer buf;            // capacity-managed payload (grows by doubling)
    std::uint64_t size = 0;   // logical length
    std::map<std::string, std::uint32_t> children;  // directories
    std::map<std::string, Bytes> xattrs;
  };
  using Table = CowTable<Inode>;
  using Snapshot = CowSnapshot<Inode>;

  struct OpenFile {
    std::uint32_t ino_index;
    std::uint32_t flags;
  };

  static constexpr std::uint32_t kRootIndex = 0;

  Result<std::uint32_t> ResolveIndex(const std::string& path) const;
  struct ParentRef {
    std::uint32_t parent_index;
    std::string name;
  };
  Result<ParentRef> ResolveParentRef(const std::string& path) const;
  std::uint32_t AllocInode();
  void ReleaseInodeIfUnlinked(std::uint32_t index);
  std::uint32_t CountLinks(std::uint32_t index) const;
  std::uint64_t NowNs() { return ++op_counter_ * 1000; }
  fs::InodeAttr ToAttr(std::uint32_t index, const Inode& inode) const;
  std::uint64_t TotalDataBytes() const;
  Status CheckQuota(std::uint64_t additional) const;
  Result<std::uint32_t> CreateChild(const ParentRef& ref, fs::FileType type,
                                    fs::Mode mode,
                                    const std::string& symlink_target);

  Bytes SerializeState() const;
  void DeserializeState(ByteView state);
  void CollectPathsRec(std::uint32_t index, const std::string& prefix,
                       std::vector<std::string>* out) const;
  std::vector<std::string> CollectAllPaths() const;
  std::vector<fs::InodeNum> CollectUsedInos() const;
  void InvalidateKernelCaches(const std::vector<std::string>& extra_paths,
                              const std::vector<fs::InodeNum>& extra_inos);

  // --- invalidation log plumbing (O(dirty) restore), as in Verifs1 ---
  void LogEntry(const std::string& path, std::uint32_t ino_index) {
    inval_log_.Append(path, static_cast<fs::InodeNum>(ino_index) + 1);
  }
  void LogInode(std::uint32_t ino_index) {
    inval_log_.Append({}, static_cast<fs::InodeNum>(ino_index) + 1);
  }
  void EmitInvalRecords(const std::vector<InvalRecord>& records);
  void CompactInvalLog();

  Verifs2Options options_;
  bool mounted_ = false;
  Table inodes_;  // dynamically grown, in COW chunks
  std::unordered_map<fs::FileHandle, OpenFile> open_files_;
  fs::FileHandle next_handle_ = 1;
  std::uint64_t op_counter_ = 0;
  SnapshotPool<Snapshot> pool_;
  InvalLog inval_log_;
  fs::KernelNotifier* notifier_ = nullptr;
};

}  // namespace mcfs::verifs

// The four historical VeriFS bugs the paper reports MCFS finding (§6),
// reproducible on demand. Each flag re-introduces one bug so the bench
// suite can measure operations-to-detection and tests can verify both the
// buggy and the fixed behaviour.
#pragma once

namespace mcfs::verifs {

struct VerifsBugs {
  // VeriFS1 bug #1 (caught after ~9K ops vs Ext4): truncate failed to
  // clear newly allocated space when expanding a file — stale bytes from
  // a previous, longer incarnation of the file become visible.
  bool truncate_no_zero_on_expand = false;

  // VeriFS1 bug #2 (caught after ~12K ops vs Ext4): after a rollback the
  // kernel's dentry/inode caches were not invalidated, so mkdir could
  // fail with EEXIST for a directory that did not exist. The fix was
  // calling fuse_lowlevel_notify_inval_entry / _inval_inode.
  bool skip_cache_invalidation_on_restore = false;

  // VeriFS2 bug #3 (caught after ~900K ops vs VeriFS1): write failed to
  // zero the buffer gap when a write beyond EOF created a hole.
  bool write_hole_no_zero = false;

  // VeriFS2 bug #4 (caught after ~1.2M ops vs VeriFS1): write updated the
  // file size only when the file grew beyond its buffer capacity, not
  // whenever it was appended to — files came out short.
  bool size_update_only_on_capacity_growth = false;

  static VerifsBugs None() { return {}; }
};

}  // namespace mcfs::verifs

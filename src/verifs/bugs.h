// Seeded VeriFS bugs: the four historical bugs the paper reports MCFS
// finding (§6), plus a mutation corpus used to measure the checker's
// kill rate (see src/verifs/mutations.h). Each flag re-introduces one
// bug so the bench suite can measure operations-to-detection, tests can
// verify both the buggy and the fixed behaviour, and the mutation
// campaign can assert the checker actually detects each class of fault.
#pragma once

namespace mcfs::verifs {

struct VerifsBugs {
  // -------------------------------------------------------------------
  // The four historical bugs (paper §6).

  // VeriFS1 bug #1 (caught after ~9K ops vs Ext4): truncate failed to
  // clear newly allocated space when expanding a file — stale bytes from
  // a previous, longer incarnation of the file become visible.
  bool truncate_no_zero_on_expand = false;

  // VeriFS1 bug #2 (caught after ~12K ops vs Ext4): after a rollback the
  // kernel's dentry/inode caches were not invalidated, so mkdir could
  // fail with EEXIST for a directory that did not exist. The fix was
  // calling fuse_lowlevel_notify_inval_entry / _inval_inode.
  bool skip_cache_invalidation_on_restore = false;

  // VeriFS2 bug #3 (caught after ~900K ops vs VeriFS1): write failed to
  // zero the buffer gap when a write beyond EOF created a hole.
  bool write_hole_no_zero = false;

  // VeriFS2 bug #4 (caught after ~1.2M ops vs VeriFS1): write updated the
  // file size only when the file grew beyond its buffer capacity, not
  // whenever it was appended to — files came out short.
  bool size_update_only_on_capacity_growth = false;

  // -------------------------------------------------------------------
  // Mutation corpus, VeriFS1 (see mutations.h for the registry).

  // stat reports file sizes one byte large.
  bool stat_size_off_by_one = false;
  // mkdir over an existing name reports ENOENT instead of EEXIST.
  bool mkdir_eexist_as_enoent = false;
  // mkdir over an existing name correctly fails EEXIST but first
  // bumps the PARENT directory's group id — a failed operation with a
  // real side effect one hop from its target. (gid, unlike mode, is
  // never otherwise written by any pool op, so the corruption is
  // observable in the digest.) Detecting it requires the incremental
  // abstraction's failed-mutation guard to re-hash the parent, not just
  // the named path.
  bool mkdir_eexist_chowns_parent = false;
  // rmdir removes non-empty directories instead of failing ENOTEMPTY
  // (the orphaned children leak).
  bool rmdir_ignores_nonempty = false;
  // chmod returns success but never stores the new mode.
  bool chmod_ignores_mode = false;
  // truncate to a smaller size silently does nothing.
  bool truncate_shrink_noop = false;
  // ioctl restore drops the highest-numbered non-root inode from the
  // restored image — one file or directory vanishes per rollback.
  bool restore_skips_one_inode = false;

  // -------------------------------------------------------------------
  // Mutation corpus, VeriFS2.

  // rename moves the inode but drops its extended attributes.
  bool rename_drops_xattrs = false;
  // unlink of a missing file reports EPERM instead of ENOENT.
  bool unlink_enoent_as_eperm = false;
  // symlink creation truncates the stored target by one character.
  bool symlink_truncates_target = false;
  // removexattr of an absent name reports success instead of ENODATA.
  bool removexattr_ok_when_missing = false;
  // write that grows a file within capacity records one byte too few.
  bool write_grow_size_off_by_one = false;
  // stat over-reports nlink by one for regular files.
  bool getattr_nlink_off_by_one = false;
  // truncate expansion exposes stale buffer bytes (VeriFS2 variant of
  // historical bug #1).
  bool truncate_expand_stale = false;
  // link silently overwrites an existing destination instead of EEXIST.
  bool link_allows_overwrite = false;
  // readdir returns entries in reverse insertion order. The checker
  // sorts dirents before comparison (§3.4 workaround 2), so this mutant
  // is *expected to survive* — it documents a blind spot the paper
  // accepts by design.
  bool readdir_reverse_order = false;

  // -------------------------------------------------------------------
  // Dual mutants, seeded into BOTH VeriFS1 and VeriFS2 at once: the
  // relative axis pits two identically wrong implementations against
  // each other, so they agree on the buggy behaviour and 2-way (or
  // same-bug N-way) differential checking is blind by construction.
  // Only an absolute reference — the executable POSIX spec
  // (FsKind::kSpec) — can kill these.

  // rmdir of a missing name reports ENOTDIR instead of ENOENT.
  bool dual_rmdir_missing_as_enotdir = false;
  // chmod keeps the old group permission bits: the stored mode becomes
  // (new & 0707) | (old & 0070).
  bool dual_chmod_keeps_group_bits = false;

  // -------------------------------------------------------------------
  // Crash mutants (kernel file systems, not VeriFS): persistence bugs
  // that are invisible to the live differential check and exist to prove
  // the crash-exploration mode can kill what nothing else can. Routed to
  // the jffs2f/ext4f options by FsUnderTest, not to VeriFS.

  // jffs2f: mount ignores the replayed log and presents a fresh tree.
  bool jffs2_skip_log_replay = false;
  // ext4f: fsync acks success before the journal commit is durable (no
  // device barrier is issued on the fsync path).
  bool ext4_ack_before_journal_commit = false;

  static VerifsBugs None() { return {}; }
};

}  // namespace mcfs::verifs

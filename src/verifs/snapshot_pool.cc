#include "verifs/snapshot_pool.h"

#include <utility>

namespace mcfs::verifs {

void SnapshotPool::Put(std::uint64_t key, Bytes state) {
  auto it = snapshots_.find(key);
  if (it != snapshots_.end()) {
    total_bytes_ -= it->second.size();
    total_bytes_ += state.size();
    it->second = std::move(state);
    return;
  }
  total_bytes_ += state.size();
  snapshots_.emplace(key, std::move(state));
}

std::optional<ByteView> SnapshotPool::Peek(std::uint64_t key) const {
  auto it = snapshots_.find(key);
  if (it == snapshots_.end()) return std::nullopt;
  return ByteView(it->second);
}

Result<Bytes> SnapshotPool::Take(std::uint64_t key) {
  auto it = snapshots_.find(key);
  if (it == snapshots_.end()) return Errno::kENOENT;
  Bytes out = std::move(it->second);
  total_bytes_ -= out.size();
  snapshots_.erase(it);
  return out;
}

Status SnapshotPool::Discard(std::uint64_t key) {
  auto it = snapshots_.find(key);
  if (it == snapshots_.end()) return Errno::kENOENT;
  total_bytes_ -= it->second.size();
  snapshots_.erase(it);
  return Status::Ok();
}

}  // namespace mcfs::verifs

// A user-space NFS server in the NFS-Ganesha mold (paper §5):
// "However, CRIU was able to snapshot the user-space NFS server Ganesha;
// we are investigating model-checking Ganesha with CRIU."
//
// Structure mirrors the FUSE deployment — a daemon process hosting a
// file system behind a message channel — with the one difference that
// decides everything for CRIU: the channel is a TCP socket, not a
// character device, so the daemon holds no device handles and CAN be
// checkpointed. The file-system state lives entirely in the daemon's
// memory (a VeriFS-class RAM file system), so a CRIU image of the
// process is a complete state capture.
//
// FsUnderTest exposes this as transport `kNfs` + StateStrategy::kCriu.
#pragma once

#include <memory>

#include "fs/filesystem.h"
#include "fuse/fuse_channel.h"
#include "fuse/fuse_host.h"
#include "fuse/fuse_kernel.h"
#include "snapshot/criu.h"
#include "verifs/verifs1.h"
#include "verifs/verifs2.h"

namespace mcfs::nfs {

// Wire latency of one NFS RPC crossing over loopback TCP (~3x a FUSE
// crossing: socket stack + RPC encode).
constexpr SimClock::Nanos kNfsCrossingCost = 30'000;

class GaneshaServer {
 public:
  // `exported` must be a VeriFS-class file system (its full state lives
  // in process memory, which is what the CRIU image captures).
  GaneshaServer(fs::FileSystemPtr exported, SimClock* clock);

  // The NFS-client view of the export: mount it in a Vfs like any FS.
  const std::shared_ptr<fuse::FuseClientFs>& client() const {
    return client_;
  }

  fs::FileSystem& exported() { return *exported_; }
  fuse::FuseChannel& channel() { return channel_; }

  // The process CRIU inspects: no device handles, memory = FS state.
  snapshot::ProcessDescriptor& process() { return process_; }

 private:
  class Process final : public snapshot::ProcessDescriptor {
   public:
    explicit Process(GaneshaServer* server) : server_(server) {}

    std::string name() const override { return "nfs-ganesha"; }
    std::vector<std::string> open_device_paths() const override {
      return {};  // sockets only — the property CRIU needs
    }
    Bytes CaptureMemory() const override;
    Status RestoreMemory(ByteView image) override;

   private:
    GaneshaServer* server_;
  };

  fs::FileSystemPtr exported_;
  fuse::FuseChannel channel_;
  std::unique_ptr<fuse::FuseHost> host_;
  std::shared_ptr<fuse::FuseClientFs> client_;
  Process process_;
};

}  // namespace mcfs::nfs

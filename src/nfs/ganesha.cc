#include "nfs/ganesha.h"

namespace mcfs::nfs {

GaneshaServer::GaneshaServer(fs::FileSystemPtr exported, SimClock* clock)
    : exported_(std::move(exported)),
      channel_(clock, kNfsCrossingCost, /*copy_cost_per_kb=*/600,
               /*char_device=*/false, "tcp:0.0.0.0:2049"),
      host_(std::make_unique<fuse::FuseHost>(exported_, &channel_)),
      client_(std::make_shared<fuse::FuseClientFs>(&channel_)),
      process_(this) {
  // Restore-time cache invalidations flow like the FUSE deployment's.
  if (auto* v1 = dynamic_cast<verifs::Verifs1*>(exported_.get())) {
    v1->SetNotifier(host_.get());
  }
  if (auto* v2 = dynamic_cast<verifs::Verifs2*>(exported_.get())) {
    v2->SetNotifier(host_.get());
  }
}

Bytes GaneshaServer::Process::CaptureMemory() const {
  if (auto* v1 =
          dynamic_cast<verifs::Verifs1*>(server_->exported_.get())) {
    return v1->ExportState();
  }
  if (auto* v2 =
          dynamic_cast<verifs::Verifs2*>(server_->exported_.get())) {
    return v2->ExportState();
  }
  return {};
}

Status GaneshaServer::Process::RestoreMemory(ByteView image) {
  if (auto* v1 =
          dynamic_cast<verifs::Verifs1*>(server_->exported_.get())) {
    v1->ImportState(image);
    return Status::Ok();
  }
  if (auto* v2 =
          dynamic_cast<verifs::Verifs2*>(server_->exported_.get())) {
    v2->ImportState(image);
    return Status::Ok();
  }
  return Errno::kENOTSUP;
}

}  // namespace mcfs::nfs

// FrontierService: serves a SharedFrontier over frames — the server
// half of remote work-stealing.
//
// The wrapped SharedFrontier runs the exact in-process termination
// protocol; remote workers participate through three translations:
//
//  * Started/Retire RPCs move the server-side busy count. The service
//    keeps a per-connection balance and retires leaked counts in
//    OnDisconnect, so a worker (or whole host) that dies mid-run cannot
//    wedge the swarm's termination detection forever.
//  * StealWait maps to SharedFrontier::StealOrTerminateFor with the
//    requested timeout clamped to kMaxWaitMs: a remote worker's long
//    wait becomes a sequence of short server-side waits (each kTimeout
//    reply re-armed client-side), keeping every connection thread's
//    blocking bounded. Between rounds the remote worker still counts
//    busy, which can only delay — never falsify — the drained verdict.
//  * Every reply carries kFlagStopped/kFlagHungry so clients track the
//    sticky stop and donation pressure without polling RPCs.
// Under the reactor (HandleAsync), StealWait is *deferred* instead of
// blocking: BeginWait either answers immediately or parks the request's
// ReplyToken on a deadline list. Each reactor tick (and every Push /
// Retire / Stop, for latency) re-probes parked waits via PollWait;
// deadline expiry concludes with CancelWait + a kTimeout reply the
// client re-arms, exactly like the blocking path's verdict. A parked
// remote worker therefore costs zero server threads while still
// counting idle for the whole parked duration — the property the
// termination protocol needs (instantaneous-probe polling would never
// observe all workers idle at once).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "mc/frontier.h"
#include "net/server.h"

namespace mcfs::net {

class FrontierService final : public FrameService {
 public:
  // Server-side cap on one StealWait round. Clients re-arm on kTimeout.
  static constexpr std::uint32_t kMaxWaitMs = 1000;

  // The frontier is borrowed and must outlive the service.
  explicit FrontierService(mc::SharedFrontier* frontier)
      : frontier_(frontier) {}

  bool Handles(FrameType type) const override;
  Result<Frame> Handle(const Frame& request, std::uint64_t conn_id) override;
  void HandleAsync(const Frame& request, std::uint64_t conn_id,
                   ReplyTokenPtr token) override;
  void OnTick() override;
  void OnDisconnect(std::uint64_t conn_id) override;

  // Steal-waits currently parked on the deadline list (tests: 64 parked
  // workers, zero extra server threads).
  std::size_t parked_waits() const;

 private:
  // A deferred StealWait: the frontier-side wait began (busy count
  // decremented); the reply completes from OnTick / a Push / disconnect.
  struct ParkedWait {
    ReplyTokenPtr token;
    std::uint64_t conn_id = 0;
    int worker = 0;
    std::chrono::steady_clock::time_point deadline;
  };

  // Builds the StealWait reply frame; flags reflect frontier state at
  // completion time, matching the blocking path.
  Frame MakeStealReply(mc::SharedFrontier::StealWaitResult round);

  // Re-probes every parked wait, completing those that concluded.
  void PollParked();

  mc::SharedFrontier* const frontier_;

  mutable std::mutex mu_;
  // Outstanding Started-minus-Retired per connection, for disconnect
  // cleanup.
  std::map<std::uint64_t, int> busy_balance_;
  std::vector<ParkedWait> parked_;
};

}  // namespace mcfs::net

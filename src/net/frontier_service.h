// FrontierService: serves a SharedFrontier over frames — the server
// half of remote work-stealing.
//
// The wrapped SharedFrontier runs the exact in-process termination
// protocol; remote workers participate through three translations:
//
//  * Started/Retire RPCs move the server-side busy count. The service
//    keeps a per-connection balance and retires leaked counts in
//    OnDisconnect, so a worker (or whole host) that dies mid-run cannot
//    wedge the swarm's termination detection forever.
//  * StealWait maps to SharedFrontier::StealOrTerminateFor with the
//    requested timeout clamped to kMaxWaitMs: a remote worker's long
//    wait becomes a sequence of short server-side waits (each kTimeout
//    reply re-armed client-side), keeping every connection thread's
//    blocking bounded. Between rounds the remote worker still counts
//    busy, which can only delay — never falsify — the drained verdict.
//  * Every reply carries kFlagStopped/kFlagHungry so clients track the
//    sticky stop and donation pressure without polling RPCs.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>

#include "mc/frontier.h"
#include "net/server.h"

namespace mcfs::net {

class FrontierService final : public FrameService {
 public:
  // Server-side cap on one StealWait round. Clients re-arm on kTimeout.
  static constexpr std::uint32_t kMaxWaitMs = 1000;

  // The frontier is borrowed and must outlive the service.
  explicit FrontierService(mc::SharedFrontier* frontier)
      : frontier_(frontier) {}

  bool Handles(FrameType type) const override;
  Result<Frame> Handle(const Frame& request, std::uint64_t conn_id) override;
  void OnDisconnect(std::uint64_t conn_id) override;

 private:
  mc::SharedFrontier* const frontier_;

  std::mutex mu_;
  // Outstanding Started-minus-Retired per connection, for disconnect
  // cleanup.
  std::map<std::uint64_t, int> busy_balance_;
};

}  // namespace mcfs::net

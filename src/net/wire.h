// Payload layouts for every FrameType, plus their encode/decode pairs.
//
// Decoders are hardened the same way VisitedTable::Deserialize is: a
// declared element count is bounds-checked against the bytes actually
// present *before* any allocation sized by it, and ByteReader's
// out_of_range (truncated payload) is caught and folded into kEINVAL —
// a malformed peer must never crash or balloon the process. All
// integers are little-endian (ByteWriter/ByteReader convention).
//
// Layouts (DESIGN.md §7.3 has the prose version):
//   VisitedInsert  req: u32 n, n×16B digests
//                  rsp: u64 size, u64 bytes, u64 resize_count,
//                       u32 resize_events, u64 rehashed,
//                       u32 n, n×u8 inserted
//   VisitedContains req: u32 n, n×16B digests
//                  rsp: u64 size, u64 bytes, u64 resize_count,
//                       u32 n, n×u8 present
//   VisitedStats   req: empty
//                  rsp: u64 size, u64 bytes, u64 resize_count
//   VisitedDump    req: u64 offset, u32 max_digests
//                  rsp: u64 total, u32 n, n×16B digests
//   FrontierPush   req: FrontierEntry          rsp: empty
//   FrontierTrySteal req: u32 worker           rsp: u8 has, [entry]
//   FrontierStealWait req: u32 worker, u32 timeout_ms
//                  rsp: u8 outcome(0 entry,1 timeout,2 drained,3 stopped),
//                       [entry]
//   FrontierStarted/Retire/Stop req+rsp: empty
//   FrontierStats  req: empty
//                  rsp: u64 size, u64 peak, u64 pushed, u64 stolen
//   Error          rsp: i32 errno (mcfs::Errno value)
//   FrontierEntry  encoding: u64 tag, 16B digest, u32 trail_n, trail
//                  u32s, u32 pending_n, pending u32s
// Every frontier *reply* additionally carries kFlagStopped/kFlagHungry
// in the frame flags so clients track both without extra round-trips.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mc/frontier.h"
#include "util/bytes.h"
#include "util/md5.h"
#include "util/result.h"

namespace mcfs::net {

// --- digests -------------------------------------------------------

void PutDigest(ByteWriter& w, const Md5Digest& digest);
Result<Md5Digest> GetDigest(ByteReader& r);

Bytes EncodeDigestList(std::span<const Md5Digest> digests);
Result<std::vector<Md5Digest>> DecodeDigestList(ByteView payload);

// --- visited-store messages ---------------------------------------

struct InsertBatchResponse {
  std::uint64_t store_size = 0;     // post-insert aggregate snapshots...
  std::uint64_t store_bytes = 0;    // ...the client caches so size() and
  std::uint64_t resize_count = 0;   // friends never need an extra RPC
  std::uint32_t resize_events = 0;  // resizes triggered by this batch
  std::uint64_t rehashed = 0;       // entries moved by those resizes
  std::vector<bool> inserted;       // per-digest: this call won the credit
};

Bytes EncodeInsertResponse(const InsertBatchResponse& rsp);
Result<InsertBatchResponse> DecodeInsertResponse(ByteView payload);

struct ContainsBatchResponse {
  std::uint64_t store_size = 0;
  std::uint64_t store_bytes = 0;
  std::uint64_t resize_count = 0;
  std::vector<bool> present;
};

Bytes EncodeContainsResponse(const ContainsBatchResponse& rsp);
Result<ContainsBatchResponse> DecodeContainsResponse(ByteView payload);

struct StoreStats {
  std::uint64_t size = 0;
  std::uint64_t bytes = 0;
  std::uint64_t resize_count = 0;
};

Bytes EncodeStoreStats(const StoreStats& stats);
Result<StoreStats> DecodeStoreStats(ByteView payload);

struct DumpRequest {
  std::uint64_t offset = 0;
  std::uint32_t max_digests = 0;
};

Bytes EncodeDumpRequest(const DumpRequest& req);
Result<DumpRequest> DecodeDumpRequest(ByteView payload);

struct DumpResponse {
  std::uint64_t total = 0;  // store size; lets the client loop to the end
  std::vector<Md5Digest> digests;
};

Bytes EncodeDumpResponse(const DumpResponse& rsp);
Result<DumpResponse> DecodeDumpResponse(ByteView payload);

// --- frontier messages --------------------------------------------

void PutFrontierEntry(ByteWriter& w, const mc::FrontierEntry& entry);
Result<mc::FrontierEntry> GetFrontierEntry(ByteReader& r);

Bytes EncodeFrontierEntry(const mc::FrontierEntry& entry);
Result<mc::FrontierEntry> DecodeFrontierEntry(ByteView payload);

struct StealRequest {
  std::uint32_t worker = 0;
  std::uint32_t timeout_ms = 0;  // StealWait only
};

Bytes EncodeStealRequest(const StealRequest& req, bool with_timeout);
Result<StealRequest> DecodeStealRequest(ByteView payload, bool with_timeout);

// Outcome byte values for FrontierStealWait responses; mirrors
// mc::SharedFrontier::StealWait.
inline constexpr std::uint8_t kStealEntry = 0;
inline constexpr std::uint8_t kStealTimeout = 1;
inline constexpr std::uint8_t kStealDrained = 2;
inline constexpr std::uint8_t kStealStopped = 3;

struct StealResponse {
  std::uint8_t outcome = kStealTimeout;
  std::optional<mc::FrontierEntry> entry;
};

Bytes EncodeStealResponse(const StealResponse& rsp);
Result<StealResponse> DecodeStealResponse(ByteView payload);

struct FrontierStats {
  std::uint64_t size = 0;
  std::uint64_t peak = 0;
  std::uint64_t pushed = 0;
  std::uint64_t stolen = 0;
};

Bytes EncodeFrontierStats(const FrontierStats& stats);
Result<FrontierStats> DecodeFrontierStats(ByteView payload);

// --- error reply ---------------------------------------------------

Bytes EncodeError(Errno error);
// Malformed error payloads fold to kEIO: "the server failed and we
// cannot even tell how".
Errno DecodeError(ByteView payload);

}  // namespace mcfs::net

// RemoteVisitedStore: the VisitedStore interface backed by a
// visited_server over one pipelined RpcClient.
//
// Batching is where this earns its keep: the explorer's walk-mode
// credit buffering (ExplorerOptions::store_batch_size) turns N
// per-state round-trips into one InsertBatch RPC, and bench_swarm
// Part 3 measures the difference. Scalar Insert/Contains are one-
// element batches — correct, just paying a full round-trip each.
//
// Degradation (ISSUE acceptance criterion: a dead server must degrade,
// not hang): when an RPC exhausts its retries, the store flips — once,
// stickily — to a private in-process ShardedVisitedTable and the run
// continues as an ordinary cooperative swarm *for this process*.
// What that costs, honestly:
//  * digests inserted remotely before the flip are unknown locally, so
//    workers may re-explore states the swarm already covered (safe:
//    revisiting is wasted work, never wrong answers);
//  * discovery credit is no longer globally unique across processes;
//  * size() becomes "last known remote size + local inserts since",
//    an overlap-blind approximation.
// The flip is logged, counted in health() (-> SwarmResult's
// store_degradations), and never reversed mid-run: flapping between
// stores would make discovery credit incoherent.
// Scalar coalescing: DFS workers call scalar Insert/Contains on the
// hot path (walk-mode credit buffering only batches in kRandomWalk).
// Each scalar op joins a small *forming* batch; while one batch's RPC
// is in flight, concurrent scalars pile into the next one, and the
// first waiter to find the wire free flies it (group commit). One
// worker alone still sends 1-element batches — coalescing adds no
// latency uncontended — but 64 workers hammering scalar ops share a
// handful of in-flight RPCs instead of 64 pipelined round-trips.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>

#include "mc/sharded_table.h"
#include "mc/visited_store.h"
#include "net/client.h"

namespace mcfs::net {

class RemoteVisitedStore final : public mc::VisitedStore {
 public:
  explicit RemoteVisitedStore(Endpoint endpoint, RetryPolicy policy = {});

  mc::StoreInsert Insert(const Md5Digest& digest) override;
  bool Contains(const Md5Digest& digest) const override;
  std::vector<mc::StoreInsert> InsertBatch(
      std::span<const Md5Digest> digests) override;
  std::vector<bool> ContainsBatch(
      std::span<const Md5Digest> digests) const override;

  // Dumps the server's digests chunk by chunk (plus, after a flip, the
  // local fallback's). Returns false when degraded or when the dump
  // RPC fails — a partial union must not masquerade as the union.
  bool ForEachDigest(
      const std::function<void(const Md5Digest&)>& fn) const override;

  // Cached from the most recent reply; after a flip, remote-at-flip +
  // local growth. Never an extra RPC — size() is on the explorer's
  // per-op target-check path.
  std::uint64_t size() const override;
  std::uint64_t bytes_used() const override;
  std::uint64_t resize_count() const override;

  mc::RemoteHealth health() const override;

  const Endpoint& endpoint() const { return client_.endpoint(); }

  // Coalescing effectiveness: wire_batches <= scalar_calls always;
  // strictly fewer whenever scalar ops overlapped (tests assert this).
  struct CoalesceStats {
    std::uint64_t scalar_calls = 0;  // scalar Insert+Contains invocations
    std::uint64_t wire_batches = 0;  // coalesced batches actually flown
  };
  CoalesceStats coalesce_stats() const;

  // Implementation detail of the scalar paths (public only so the
  // combiner helper in the .cc can name them). One forming/in-flight
  // scalar batch; R is the per-element result type: StoreInsert for
  // inserts, char for contains (vector<bool> has no stable elements).
  template <typename R>
  struct ScalarBatch {
    std::vector<Md5Digest> digests;
    std::vector<R> results;
    bool done = false;
  };
  template <typename R>
  struct Coalescer {
    std::mutex mu;
    std::condition_variable cv;
    std::shared_ptr<ScalarBatch<R>> forming;  // created lazily
    bool in_flight = false;                   // a batch's RPC is on the wire
  };

 private:
  // Sticky flip to the local fallback. Thread-safe; first caller wins.
  void Degrade(Errno error) const;
  bool degraded() const { return degraded_.load(std::memory_order_acquire); }

  mutable RpcClient client_;
  // Fallback constructed up front (cheap) so the flip is a single
  // atomic store — no locking on the fast path.
  const std::unique_ptr<mc::ShardedVisitedTable> fallback_;

  mutable std::atomic<bool> degraded_{false};
  mutable std::atomic<std::uint64_t> degrade_events_{0};
  mutable std::mutex degrade_mu_;  // serializes the flip itself

  // Remote aggregates, refreshed from every reply. After the flip they
  // freeze at their last known values and fallback growth adds on top.
  mutable std::atomic<std::uint64_t> remote_size_{0};
  mutable std::atomic<std::uint64_t> remote_bytes_{0};
  mutable std::atomic<std::uint64_t> remote_resizes_{0};

  // Scalar-op coalescers (mutable: Contains is const).
  mutable Coalescer<mc::StoreInsert> insert_co_;
  mutable Coalescer<char> contains_co_;
  mutable std::atomic<std::uint64_t> scalar_calls_{0};
  mutable std::atomic<std::uint64_t> wire_batches_{0};
};

}  // namespace mcfs::net

// FrameServer: accepts connections and dispatches decoded frames to
// registered services.
//
// Threading model: one accept thread plus one thread per connection —
// the straightforward model for a handful of model-checking workers
// (tens of connections, not tens of thousands). Per-connection threads
// also give the frontier service its blocking-wait building block: a
// StealWait request may sleep server-side without stalling any other
// connection, which is exactly why RemoteFrontier opens a dedicated
// steal channel per worker.
//
// Requests on one connection are handled strictly in arrival order and
// answered in that order — the FIFO discipline RpcClient's pipelining
// relies on instead of request IDs.
//
// Lifecycle: Stop() (idempotent, also run by the destructor) closes the
// listener, shuts every live connection down, joins all threads, and
// fires FrameService::OnDisconnect for each connection so services can
// reclaim per-connection state (the frontier service retires leaked
// busy counts there).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/socket.h"

namespace mcfs::net {

class FrameService {
 public:
  virtual ~FrameService() = default;

  // True if this service owns `type`. Exactly one registered service
  // should claim each request type.
  virtual bool Handles(FrameType type) const = 0;

  // Handles one request and returns the reply frame (type must be
  // request|kReplyBit; flags per the service's protocol). An error
  // Result becomes a kError reply. `conn_id` identifies the connection
  // for per-connection state; ids are never reused within one server.
  virtual Result<Frame> Handle(const Frame& request, std::uint64_t conn_id) = 0;

  // The connection closed (cleanly or not). Called exactly once per
  // connection that ever reached this service's Handle.
  virtual void OnDisconnect(std::uint64_t conn_id) { (void)conn_id; }
};

class FrameServer {
 public:
  // Services are borrowed, not owned; they must outlive the server.
  explicit FrameServer(std::vector<FrameService*> services);
  ~FrameServer();

  FrameServer(const FrameServer&) = delete;
  FrameServer& operator=(const FrameServer&) = delete;

  // Binds and starts accepting. `listen` may use port 0; the resolved
  // endpoint is available from endpoint() afterwards.
  Status Start(const Endpoint& listen);

  const Endpoint& endpoint() const { return endpoint_; }

  // Stops accepting, severs every connection, joins all threads.
  // Idempotent; safe to call while requests are in flight (workers see
  // their RPCs fail and degrade — the ISSUE's server-kill scenario).
  void Stop();

  bool running() const { return running_; }

  // Total connections ever accepted (tests).
  std::uint64_t connections_accepted() const;

 private:
  void AcceptLoop();
  void ServeConnection(Socket socket, std::uint64_t conn_id);

  std::vector<FrameService*> services_;
  Listener listener_;
  Endpoint endpoint_;
  std::thread accept_thread_;
  bool running_ = false;

  std::mutex mu_;
  std::uint64_t next_conn_id_ = 1;
  std::uint64_t accepted_ = 0;
  // Live connection fds, for Shutdown() on Stop; joined threads.
  std::map<std::uint64_t, int> live_fds_;
  std::vector<std::thread> conn_threads_;
  bool stopping_ = false;
};

}  // namespace mcfs::net

// FrameServer: accepts connections and dispatches decoded frames to
// registered services.
//
// Threading model (DESIGN.md §7.9): the default is an epoll *reactor* —
// one event loop thread (optionally N shards, connections round-robin)
// owning every connection: non-blocking sockets, per-connection
// incremental decode (FrameDecoder), and buffered writes with
// backpressure. A service may answer a request immediately or *defer*
// it: Handle's async form receives a ReplyToken whose Complete() can be
// called later from any thread — that is how FrontierService parks a
// StealWait on a timer instead of sleeping a per-connection thread, so
// 64 parked remote workers cost zero threads instead of 64.
//
// The pre-reactor thread-per-connection model survives as
// ServerOptions::Model::kThreadPerConn — the honest baseline the
// connection-scaling bench compares against, and a fallback should a
// platform lack epoll.
//
// Requests on one connection are handled strictly in arrival order and
// answered in that order — even when an earlier request's reply is
// deferred and a later one completes first, the later reply waits in
// its FIFO slot. This is the discipline RpcClient's pipelining relies
// on instead of request IDs.
//
// Lifecycle: Stop() (idempotent, also run by the destructor) closes the
// listener, severs every live connection, joins all threads, and fires
// FrameService::OnDisconnect for each connection so services can
// reclaim per-connection state (the frontier service cancels parked
// waits and retires leaked busy counts there).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/socket.h"

namespace mcfs::net {

namespace internal {
struct ReactorShard;
}  // namespace internal

// One-shot completion handle for a deferred reply. Thread-safe:
// Complete() may run on any thread (a reactor tick, another shard's
// dispatch, a service's own worker); the reply is routed back to the
// owning reactor shard, which encodes it into the connection's FIFO
// slot. Completing after the connection (or server) is gone is a safe
// no-op. A token dropped without Complete() answers kEIO, so an
// abandoned request can never wedge the connection's reply pipeline.
class ReplyToken {
 public:
  ReplyToken(std::weak_ptr<internal::ReactorShard> shard,
             std::uint64_t conn_id, std::uint64_t slot);
  ~ReplyToken();

  ReplyToken(const ReplyToken&) = delete;
  ReplyToken& operator=(const ReplyToken&) = delete;

  // Delivers the reply (or an error that becomes a kError frame).
  // First call wins; later calls are ignored.
  void Complete(Result<Frame> reply);

  std::uint64_t conn_id() const { return conn_id_; }

 private:
  std::weak_ptr<internal::ReactorShard> shard_;
  const std::uint64_t conn_id_;
  const std::uint64_t slot_;
  std::atomic<bool> completed_{false};
};

using ReplyTokenPtr = std::shared_ptr<ReplyToken>;

class FrameService {
 public:
  virtual ~FrameService() = default;

  // True if this service owns `type`. Exactly one registered service
  // should claim each request type.
  virtual bool Handles(FrameType type) const = 0;

  // Synchronous form: handles one request and returns the reply frame
  // (type must be request|kReplyBit; flags per the service's
  // protocol). An error Result becomes a kError reply. `conn_id`
  // identifies the connection for per-connection state; ids are never
  // reused within one server. Used directly by the thread-per-conn
  // model, and by the default HandleAsync adapter below.
  virtual Result<Frame> Handle(const Frame& request, std::uint64_t conn_id) = 0;

  // Reactor form: must eventually call token->Complete(...) — either
  // inline (the common case) or later, from any thread, for requests
  // that legitimately wait (deferred replies). The default adapter
  // completes synchronously via Handle.
  virtual void HandleAsync(const Frame& request, std::uint64_t conn_id,
                           ReplyTokenPtr token) {
    token->Complete(Handle(request, conn_id));
  }

  // The connection closed (cleanly or not). Called exactly once per
  // accepted connection; services drop per-connection state and cancel
  // any deferred replies still parked for it.
  virtual void OnDisconnect(std::uint64_t conn_id) { (void)conn_id; }

  // Reactor heartbeat, called from each shard's loop roughly every
  // ServerOptions::tick_ms while the server runs. Services with parked
  // deferred replies poll their timers here. Never called by the
  // thread-per-conn model (which blocks in Handle instead).
  virtual void OnTick() {}
};

struct ServerOptions {
  enum class Model {
    kReactor,        // epoll event loop(s); deferred replies via tokens
    kThreadPerConn,  // one thread per connection; Handle may block
  };
  Model model = Model::kReactor;

  // Reactor event-loop threads. Connections are assigned round-robin.
  // 1 shard serves tens of connections comfortably (the services'
  // shared structures are the scaling limit before the loop is).
  int reactor_shards = 1;

  // Backpressure: once a connection's unsent reply bytes exceed this,
  // the reactor stops *reading* from it (level-triggered EPOLLIN is
  // dropped) until the backlog drains below half. A peer that stops
  // draining its socket throttles only itself; it cannot balloon the
  // server. Crossing this threshold never reorders or drops replies.
  std::size_t max_write_buffer = 8u << 20;

  // Reactor tick cadence for service timers (parked steal-waits).
  int tick_ms = 5;
};

class FrameServer {
 public:
  // Services are borrowed, not owned; they must outlive the server.
  explicit FrameServer(std::vector<FrameService*> services,
                       ServerOptions options = {});
  ~FrameServer();

  FrameServer(const FrameServer&) = delete;
  FrameServer& operator=(const FrameServer&) = delete;

  // Binds and starts serving. `listen` may use port 0; the resolved
  // endpoint is available from endpoint() afterwards.
  Status Start(const Endpoint& listen);

  const Endpoint& endpoint() const { return endpoint_; }

  // Stops accepting, severs every connection, joins all threads.
  // Idempotent; safe to call while requests are in flight (workers see
  // their RPCs fail and degrade — the ISSUE's server-kill scenario).
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  // Total connections ever accepted (tests).
  std::uint64_t connections_accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }

  // Threads currently serving traffic: reactor shards, or (legacy
  // model) accept thread + live connection threads. The ISSUE's
  // acceptance criterion — 64 connections from <= 2 server threads —
  // is asserted against this.
  int serving_threads() const;

  const ServerOptions& options() const { return options_; }

 private:
  friend struct internal::ReactorShard;  // accept path + conn-id counter

  // --- legacy thread-per-connection model --------------------------
  void AcceptLoop();
  void ServeConnection(Socket socket, std::uint64_t conn_id);

  std::vector<FrameService*> services_;
  const ServerOptions options_;
  Listener listener_;
  Endpoint endpoint_;

  // Lifecycle flags. Atomic: running() and the accept/reactor loops
  // read them from other threads than Stop()'s caller (this was a data
  // race as plain bools; net_reactor_test pins the fix under TSan).
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> accepted_{0};

  // Reactor state (Model::kReactor).
  std::vector<std::shared_ptr<internal::ReactorShard>> shards_;
  std::thread accept_thread_;  // also the shard-0 loop in reactor mode
  std::atomic<std::uint64_t> next_conn_id_{1};

  // Legacy state (Model::kThreadPerConn).
  mutable std::mutex mu_;
  std::map<std::uint64_t, int> live_fds_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace mcfs::net

#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

namespace mcfs::net {

namespace {

// Bounds one blocking socket syscall with poll(). `events` is POLLIN or
// POLLOUT. kEAGAIN = deadline passed; kEIO = fd error/hangup.
Status PollFor(int fd, short events, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno::kEIO;
    }
    if (rc == 0) return Errno::kEAGAIN;
    // POLLERR/POLLHUP still allow a final read (to observe EOF), so
    // treat any wakeup as "go try the syscall".
    return Status::Ok();
  }
}

void SetNonBlocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return;
  const int want = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  (void)::fcntl(fd, F_SETFL, want);
}

Result<struct sockaddr_in> TcpAddr(const Endpoint& ep) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  // Numeric addresses plus "localhost"; a model-checking cluster is
  // addressed by IP, not DNS, and resolving here would add an unbounded
  // blocking call to a layer that promises bounded ones.
  const std::string host = ep.host == "localhost" ? "127.0.0.1" : ep.host;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Errno::kEINVAL;
  }
  return addr;
}

Result<struct sockaddr_un> UnixAddr(const Endpoint& ep) {
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (ep.path.size() >= sizeof(addr.sun_path)) return Errno::kENAMETOOLONG;
  std::memcpy(addr.sun_path, ep.path.c_str(), ep.path.size() + 1);
  return addr;
}

}  // namespace

std::string Endpoint::ToString() const {
  if (is_unix) return "unix:" + path;
  return host + ":" + std::to_string(port);
}

Result<Endpoint> ParseEndpoint(std::string_view text) {
  Endpoint ep;
  if (text.starts_with("unix:")) {
    ep.is_unix = true;
    ep.path = std::string(text.substr(5));
    if (ep.path.empty()) return Errno::kEINVAL;
    return ep;
  }
  const std::size_t colon = text.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 == text.size()) {
    return Errno::kEINVAL;
  }
  ep.host = std::string(text.substr(0, colon));
  const std::string_view port_str = text.substr(colon + 1);
  std::uint32_t port = 0;
  for (char c : port_str) {
    if (c < '0' || c > '9') return Errno::kEINVAL;
    port = port * 10 + static_cast<std::uint32_t>(c - '0');
    if (port > 65535) return Errno::kEINVAL;
  }
  ep.port = static_cast<std::uint16_t>(port);
  return ep;
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Status Socket::SendAll(ByteView data, int timeout_ms) {
  if (fd_ < 0) return Errno::kEBADF;
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (Status s = PollFor(fd_, POLLOUT, timeout_ms); !s.ok()) return s;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno::kEIO;
  }
  return Status::Ok();
}

Result<std::size_t> Socket::SendSome(ByteView data) {
  if (fd_ < 0) return Errno::kEBADF;
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    return Errno::kEIO;
  }
  return sent;
}

Result<std::size_t> Socket::RecvSome(std::uint8_t* buf, std::size_t len,
                                     int timeout_ms) {
  if (fd_ < 0) return Errno::kEBADF;
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, len, 0);
    if (n >= 0) return static_cast<std::size_t>(n);  // 0 = EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (Status s = PollFor(fd_, POLLIN, timeout_ms); !s.ok()) {
        return s.error();
      }
      continue;
    }
    if (errno == EINTR) continue;
    return Errno::kEIO;
  }
}

void Socket::Shutdown() {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> ConnectTo(const Endpoint& endpoint, int timeout_ms) {
  const int domain = endpoint.is_unix ? AF_UNIX : AF_INET;
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) return Errno::kEIO;
  Socket sock(fd);
  SetNonBlocking(fd, true);

  int rc;
  if (endpoint.is_unix) {
    auto addr = UnixAddr(endpoint);
    if (!addr.ok()) return addr.error();
    rc = ::connect(fd, reinterpret_cast<const struct sockaddr*>(&addr.value()),
                   sizeof(addr.value()));
  } else {
    auto addr = TcpAddr(endpoint);
    if (!addr.ok()) return addr.error();
    rc = ::connect(fd, reinterpret_cast<const struct sockaddr*>(&addr.value()),
                   sizeof(addr.value()));
  }
  if (rc < 0 && errno == EINPROGRESS) {
    if (Status s = PollFor(fd, POLLOUT, timeout_ms); !s.ok()) return s.error();
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      return Errno::kEIO;
    }
  } else if (rc < 0) {
    return Errno::kEIO;
  }

  if (!endpoint.is_unix) {
    int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return std::move(sock);
}

Listener::~Listener() { Close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_.exchange(-1, std::memory_order_acq_rel)),
      endpoint_(std::move(other.endpoint_)) {}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_.store(other.fd_.exchange(-1, std::memory_order_acq_rel),
              std::memory_order_release);
    endpoint_ = std::move(other.endpoint_);
  }
  return *this;
}

Result<Listener> Listener::Bind(const Endpoint& endpoint) {
  const int domain = endpoint.is_unix ? AF_UNIX : AF_INET;
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) return Errno::kEIO;
  Socket guard(fd);  // closes on any early return
  SetNonBlocking(fd, true);

  Listener listener;
  listener.endpoint_ = endpoint;
  if (endpoint.is_unix) {
    auto addr = UnixAddr(endpoint);
    if (!addr.ok()) return addr.error();
    // A previous run's socket file blocks bind(); stale-file removal is
    // the standard Unix-socket idiom.
    (void)::unlink(endpoint.path.c_str());
    if (::bind(fd, reinterpret_cast<const struct sockaddr*>(&addr.value()),
               sizeof(addr.value())) < 0) {
      return Errno::kEIO;
    }
  } else {
    auto addr = TcpAddr(endpoint);
    if (!addr.ok()) return addr.error();
    int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<const struct sockaddr*>(&addr.value()),
               sizeof(addr.value())) < 0) {
      return Errno::kEIO;
    }
    if (endpoint.port == 0) {
      struct sockaddr_in bound;
      socklen_t len = sizeof(bound);
      if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                        &len) < 0) {
        return Errno::kEIO;
      }
      listener.endpoint_.port = ntohs(bound.sin_port);
    }
  }
  if (::listen(fd, 64) < 0) return Errno::kEIO;

  listener.fd_.store(guard.release(), std::memory_order_release);
  return std::move(listener);
}

Result<Socket> Listener::Accept(int timeout_ms) {
  // Snapshot: Close() may race from another thread. The fd stays valid
  // for the whole call — Close() only shuts it down (waking us), the
  // close happens after the exchange so we never see a recycled fd.
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return Errno::kEIO;
  for (;;) {
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn >= 0) {
      Socket sock(conn);
      SetNonBlocking(conn, true);
      return std::move(sock);
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (Status s = PollFor(fd, POLLIN, timeout_ms); !s.ok()) {
        return s.error();
      }
      if (fd_.load(std::memory_order_acquire) < 0) {
        return Errno::kEIO;  // closed while we slept
      }
      continue;
    }
    if (errno == EINTR) continue;
    return Errno::kEIO;
  }
}

void Listener::Close() {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    // shutdown() wakes a thread blocked in poll()/accept() on this fd;
    // plain close() would leave it sleeping until its timeout.
    (void)::shutdown(fd, SHUT_RDWR);
    (void)::close(fd);
    if (endpoint_.is_unix) (void)::unlink(endpoint_.path.c_str());
  }
}

}  // namespace mcfs::net

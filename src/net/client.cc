#include "net/client.h"

#include <chrono>
#include <thread>

namespace mcfs::net {

namespace {

using Clock = std::chrono::steady_clock;

int MsUntil(Clock::time_point deadline) {
  const auto remain = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return remain.count() > 0 ? static_cast<int>(remain.count()) : 0;
}

}  // namespace

RpcClient::RpcClient(Endpoint endpoint, RetryPolicy policy)
    : endpoint_(std::move(endpoint)), policy_(policy) {}

RpcClient::~RpcClient() {
  std::lock_guard<std::mutex> lock(mu_);
  socket_.Shutdown();
}

Result<Frame> RpcClient::Call(FrameType type, ByteView payload,
                              bool idempotent, int extra_timeout_ms) {
  const int attempts = idempotent ? std::max(1, policy_.attempts) : 1;
  int backoff_ms = policy_.backoff_ms;
  Errno last = Errno::kEIO;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms *= 2;
    }
    auto reply =
        CallOnce(type, payload, policy_.call_timeout_ms + extra_timeout_ms);
    if (reply.ok()) return reply;
    failures_.fetch_add(1, std::memory_order_relaxed);
    last = reply.error();
  }
  return last;
}

void RpcClient::BreakLocked(Errno error) {
  connected_ = false;
  // Shutdown (not Close): a reader may be blocked in RecvSome on this
  // fd right now — shutdown wakes it with EOF; the fd itself is only
  // replaced once no reader is busy (the reconnect path waits).
  socket_.Shutdown();
  for (std::uint64_t t : fifo_) failed_[t] = error;
  fifo_.clear();
}

Result<Frame> RpcClient::CallOnce(FrameType type, ByteView payload,
                                  int reply_timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);

  if (!connected_) {
    // Replace the socket only once no reader holds the old fd.
    cv_.wait(lock, [this] { return !reader_busy_; });
    if (!connected_) {
      lock.unlock();
      auto sock = ConnectTo(endpoint_, policy_.connect_timeout_ms);
      lock.lock();
      if (!sock.ok()) return sock.error();
      if (!connected_ && !reader_busy_) {
        socket_ = std::move(sock.value());
        decoder_ = FrameDecoder();
        connected_ = true;
      }
      // else a racing caller reconnected first; ours closes via RAII.
    }
    if (!connected_) return Errno::kEIO;
  }

  const std::uint64_t ticket = next_ticket_++;
  fifo_.push_back(ticket);
  // Send under mu_: serializes writers, so pipelined frames never
  // interleave and fifo_ order is exactly socket order.
  const Bytes frame = EncodeFrame(type, 0, payload);
  if (Status sent = socket_.SendAll(frame, policy_.call_timeout_ms);
      !sent.ok()) {
    BreakLocked(sent.error());
    cv_.notify_all();
    failed_.erase(ticket);
    return sent.error();
  }

  const auto deadline =
      Clock::now() + std::chrono::milliseconds(reply_timeout_ms);
  for (;;) {
    if (auto it = ready_.find(ticket); it != ready_.end()) {
      Frame reply = std::move(it->second);
      ready_.erase(it);
      return std::move(reply);
    }
    if (auto it = failed_.find(ticket); it != failed_.end()) {
      const Errno error = it->second;
      failed_.erase(it);
      return error;
    }

    if (!reader_busy_ && connected_) {
      // Claim the reader role: read exactly one frame, hand it to the
      // oldest pending ticket, then re-check our own.
      reader_busy_ = true;
      lock.unlock();
      Errno read_error = Errno::kOk;
      std::optional<Frame> got;
      for (;;) {
        auto next = decoder_.Next();
        if (!next.ok()) {
          read_error = next.error();
          break;
        }
        if (next.value().has_value()) {
          got = std::move(*next.value());
          break;
        }
        const int remain = MsUntil(deadline);
        if (remain <= 0) {
          read_error = Errno::kEAGAIN;
          break;
        }
        std::uint8_t buf[16 * 1024];
        auto n = socket_.RecvSome(buf, sizeof(buf), remain);
        if (!n.ok()) {
          read_error = n.error();
          break;
        }
        if (n.value() == 0) {
          read_error = Errno::kEIO;  // EOF with replies outstanding
          break;
        }
        decoder_.Feed(ByteView(buf, n.value()));
      }
      lock.lock();
      reader_busy_ = false;
      if (got.has_value()) {
        if (!fifo_.empty()) {
          const std::uint64_t front = fifo_.front();
          fifo_.pop_front();
          ready_[front] = std::move(*got);
        }
        // A frame with no pending ticket can only follow a break that
        // already failed the queue; drop it.
      } else {
        BreakLocked(read_error);
      }
      cv_.notify_all();
      continue;
    }

    // Someone else is reading (or the connection broke and our ticket
    // is about to fail). Wait for progress — but never past our own
    // deadline: a FIFO slot cannot be abandoned, so timing out means
    // breaking the connection for everyone.
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
        ready_.find(ticket) == ready_.end() &&
        failed_.find(ticket) == failed_.end()) {
      BreakLocked(Errno::kEAGAIN);
      cv_.notify_all();
    }
  }
}

}  // namespace mcfs::net

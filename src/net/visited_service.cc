#include "net/visited_service.h"

#include "net/wire.h"

namespace mcfs::net {

namespace {

Frame Reply(FrameType request_type, Bytes payload) {
  Frame frame;
  frame.type = static_cast<FrameType>(
      static_cast<std::uint8_t>(request_type) | kReplyBit);
  frame.payload = std::move(payload);
  return frame;
}

}  // namespace

bool VisitedService::Handles(FrameType type) const {
  switch (type) {
    case FrameType::kVisitedInsert:
    case FrameType::kVisitedContains:
    case FrameType::kVisitedStats:
    case FrameType::kVisitedDump:
      return true;
    default:
      return false;
  }
}

Result<Frame> VisitedService::Handle(const Frame& request,
                                     std::uint64_t conn_id) {
  (void)conn_id;  // the store is connection-agnostic
  switch (request.type) {
    case FrameType::kVisitedInsert: {
      auto digests = DecodeDigestList(request.payload);
      if (!digests.ok()) return digests.error();
      const auto results = store_->InsertBatch(digests.value());
      InsertBatchResponse rsp;
      rsp.inserted.reserve(results.size());
      for (const mc::StoreInsert& r : results) {
        rsp.inserted.push_back(r.inserted);
        if (r.resized) ++rsp.resize_events;
        rsp.rehashed += r.rehashed;
      }
      rsp.store_size = store_->size();
      rsp.store_bytes = store_->bytes_used();
      rsp.resize_count = store_->resize_count();
      return Reply(request.type, EncodeInsertResponse(rsp));
    }
    case FrameType::kVisitedContains: {
      auto digests = DecodeDigestList(request.payload);
      if (!digests.ok()) return digests.error();
      ContainsBatchResponse rsp;
      rsp.present = store_->ContainsBatch(digests.value());
      rsp.store_size = store_->size();
      rsp.store_bytes = store_->bytes_used();
      rsp.resize_count = store_->resize_count();
      return Reply(request.type, EncodeContainsResponse(rsp));
    }
    case FrameType::kVisitedStats: {
      StoreStats stats;
      stats.size = store_->size();
      stats.bytes = store_->bytes_used();
      stats.resize_count = store_->resize_count();
      return Reply(request.type, EncodeStoreStats(stats));
    }
    case FrameType::kVisitedDump: {
      auto req = DecodeDumpRequest(request.payload);
      if (!req.ok()) return req.error();
      // Enumeration is only stable while no inserts land; the client
      // calls this after its workers joined (collect_union semantics).
      // Each chunk re-walks the store — O(n) per chunk, fine at the
      // scales where dumps make sense at all.
      DumpResponse rsp;
      std::uint64_t index = 0;
      const std::uint64_t offset = req.value().offset;
      const std::uint64_t limit = req.value().max_digests;
      const bool enumerable = store_->ForEachDigest(
          [&](const Md5Digest& digest) {
            if (index >= offset && index < offset + limit) {
              rsp.digests.push_back(digest);
            }
            ++index;
          });
      if (!enumerable) return Errno::kENOTSUP;  // e.g. a bitstate store
      rsp.total = index;
      return Reply(request.type, EncodeDumpResponse(rsp));
    }
    default:
      return Errno::kENOTSUP;
  }
}

}  // namespace mcfs::net

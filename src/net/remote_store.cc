#include "net/remote_store.h"

#include "net/wire.h"
#include "util/log.h"

namespace mcfs::net {

namespace {
// Digests per dump chunk: 64K × 16B = 1 MiB payloads, well under the
// frame cap.
constexpr std::uint32_t kDumpChunk = 64 * 1024;

// Monotonic cache update. Pipelined replies can be *processed* out of
// send order by their waiting threads, and the store's aggregates only
// ever grow — so the largest value seen is the freshest.
void StoreMax(std::atomic<std::uint64_t>& cache, std::uint64_t value) {
  std::uint64_t current = cache.load(std::memory_order_relaxed);
  while (value > current &&
         !cache.compare_exchange_weak(current, value,
                                      std::memory_order_relaxed)) {
  }
}
}  // namespace

RemoteVisitedStore::RemoteVisitedStore(Endpoint endpoint, RetryPolicy policy)
    : client_(std::move(endpoint), policy),
      fallback_(std::make_unique<mc::ShardedVisitedTable>()) {}

void RemoteVisitedStore::Degrade(Errno error) const {
  std::lock_guard<std::mutex> lock(degrade_mu_);
  if (degraded_.load(std::memory_order_relaxed)) return;
  MCFS_LOG_WARN << "visited store at " << client_.endpoint().ToString()
                << " unreachable (" << ErrnoName(error)
                << "); degrading to process-local table — cross-process "
                << "discovery credit is no longer arbitrated";
  degrade_events_.fetch_add(1, std::memory_order_relaxed);
  degraded_.store(true, std::memory_order_release);
}

// Group-commit combiner shared by the scalar paths. The caller joins
// the forming batch; the first joiner to find the wire free flies the
// whole batch through `rpc` (which handles degradation internally) and
// wakes everyone. `rpc` runs with the coalescer unlocked.
template <typename R, typename Rpc>
static R RunCoalesced(RemoteVisitedStore::Coalescer<R>& co,
                      const Md5Digest& digest, R miss, const Rpc& rpc,
                      std::atomic<std::uint64_t>& wire_batches) {
  std::unique_lock<std::mutex> lock(co.mu);
  if (!co.forming) {
    co.forming = std::make_shared<RemoteVisitedStore::ScalarBatch<R>>();
  }
  auto batch = co.forming;
  const std::size_t idx = batch->digests.size();
  batch->digests.push_back(digest);
  while (!batch->done) {
    if (!co.in_flight && co.forming == batch) {
      // Leader: take the forming batch onto the wire. New scalars now
      // pile into a fresh forming batch behind this flight.
      co.in_flight = true;
      co.forming.reset();
      lock.unlock();
      wire_batches.fetch_add(1, std::memory_order_relaxed);
      std::vector<R> results = rpc(batch->digests);
      lock.lock();
      batch->results = std::move(results);
      batch->done = true;
      co.in_flight = false;
      co.cv.notify_all();
      break;
    }
    co.cv.wait(lock);
  }
  return idx < batch->results.size() ? batch->results[idx] : miss;
}

mc::StoreInsert RemoteVisitedStore::Insert(const Md5Digest& digest) {
  if (degraded()) return fallback_->Insert(digest);  // nothing to amortize
  scalar_calls_.fetch_add(1, std::memory_order_relaxed);
  return RunCoalesced<mc::StoreInsert>(
      insert_co_, digest, mc::StoreInsert{},
      [this](const std::vector<Md5Digest>& digests) {
        return InsertBatch(digests);
      },
      wire_batches_);
}

bool RemoteVisitedStore::Contains(const Md5Digest& digest) const {
  if (degraded()) return fallback_->Contains(digest);
  scalar_calls_.fetch_add(1, std::memory_order_relaxed);
  return RunCoalesced<char>(
             contains_co_, digest, char{0},
             [this](const std::vector<Md5Digest>& digests) {
               auto present = ContainsBatch(digests);
               return std::vector<char>(present.begin(), present.end());
             },
             wire_batches_) != 0;
}

std::vector<mc::StoreInsert> RemoteVisitedStore::InsertBatch(
    std::span<const Md5Digest> digests) {
  if (digests.empty()) return {};
  if (!degraded()) {
    // Idempotent on the wire: re-inserting a digest answers
    // inserted=false. The caveat — a retry after a lost *reply* loses
    // this worker the credit for states the first attempt did insert —
    // is a stats/coverage blemish, never a wrong answer (DESIGN §7.3).
    auto reply = client_.Call(FrameType::kVisitedInsert,
                              EncodeDigestList(digests),
                              /*idempotent=*/true);
    if (reply.ok() && reply.value().IsReplyTo(FrameType::kVisitedInsert)) {
      auto rsp = DecodeInsertResponse(reply.value().payload);
      if (rsp.ok() && rsp.value().inserted.size() == digests.size()) {
        const InsertBatchResponse& r = rsp.value();
        StoreMax(remote_size_, r.store_size);
        StoreMax(remote_bytes_, r.store_bytes);
        StoreMax(remote_resizes_, r.resize_count);
        std::vector<mc::StoreInsert> results(digests.size());
        for (std::size_t i = 0; i < digests.size(); ++i) {
          results[i].inserted = r.inserted[i];
        }
        // Resize charges are per-batch aggregates on the wire; pin
        // them to the first slot so the explorer's clock sees them
        // exactly once.
        if (!results.empty() && r.resize_events > 0) {
          results.front().resized = true;
          results.front().rehashed = r.rehashed;
        }
        return results;
      }
    }
    Degrade(reply.ok() ? Errno::kEINVAL : reply.error());
  }
  return fallback_->InsertBatch(digests);
}

std::vector<bool> RemoteVisitedStore::ContainsBatch(
    std::span<const Md5Digest> digests) const {
  if (digests.empty()) return {};
  if (!degraded()) {
    auto reply = client_.Call(FrameType::kVisitedContains,
                              EncodeDigestList(digests),
                              /*idempotent=*/true);
    if (reply.ok() && reply.value().IsReplyTo(FrameType::kVisitedContains)) {
      auto rsp = DecodeContainsResponse(reply.value().payload);
      if (rsp.ok() && rsp.value().present.size() == digests.size()) {
        StoreMax(remote_size_, rsp.value().store_size);
        StoreMax(remote_bytes_, rsp.value().store_bytes);
        StoreMax(remote_resizes_, rsp.value().resize_count);
        return std::move(rsp.value().present);
      }
    }
    Degrade(reply.ok() ? Errno::kEINVAL : reply.error());
  }
  return fallback_->ContainsBatch(digests);
}

bool RemoteVisitedStore::ForEachDigest(
    const std::function<void(const Md5Digest&)>& fn) const {
  if (degraded()) return false;  // remote portion unreachable: incomplete
  std::uint64_t offset = 0;
  for (;;) {
    DumpRequest req;
    req.offset = offset;
    req.max_digests = kDumpChunk;
    auto reply = client_.Call(FrameType::kVisitedDump, EncodeDumpRequest(req),
                              /*idempotent=*/true);
    if (!reply.ok() || !reply.value().IsReplyTo(FrameType::kVisitedDump)) {
      return false;
    }
    auto rsp = DecodeDumpResponse(reply.value().payload);
    if (!rsp.ok()) return false;
    for (const Md5Digest& digest : rsp.value().digests) fn(digest);
    offset += rsp.value().digests.size();
    if (offset >= rsp.value().total || rsp.value().digests.empty()) {
      return true;
    }
  }
}

std::uint64_t RemoteVisitedStore::size() const {
  std::uint64_t total = remote_size_.load(std::memory_order_relaxed);
  if (degraded()) total += fallback_->size();
  return total;
}

std::uint64_t RemoteVisitedStore::bytes_used() const {
  std::uint64_t total = remote_bytes_.load(std::memory_order_relaxed);
  if (degraded()) total += fallback_->bytes_used();
  return total;
}

std::uint64_t RemoteVisitedStore::resize_count() const {
  std::uint64_t total = remote_resizes_.load(std::memory_order_relaxed);
  if (degraded()) total += fallback_->resize_count();
  return total;
}

RemoteVisitedStore::CoalesceStats RemoteVisitedStore::coalesce_stats() const {
  CoalesceStats stats;
  stats.scalar_calls = scalar_calls_.load(std::memory_order_relaxed);
  stats.wire_batches = wire_batches_.load(std::memory_order_relaxed);
  return stats;
}

mc::RemoteHealth RemoteVisitedStore::health() const {
  mc::RemoteHealth health;
  health.degraded = degraded();
  health.degrade_events = degrade_events_.load(std::memory_order_relaxed);
  health.rpc_failures = client_.rpc_failures();
  return health;
}

}  // namespace mcfs::net

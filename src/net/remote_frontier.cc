#include "net/remote_frontier.h"

#include <algorithm>
#include <chrono>

#include "net/wire.h"
#include "util/log.h"

namespace mcfs::net {

RemoteFrontier::RemoteFrontier(Endpoint endpoint, int workers,
                               RetryPolicy policy)
    : endpoint_(endpoint),
      policy_(policy),
      workers_(workers),
      main_(std::move(endpoint), policy) {}

Result<Frame> RemoteFrontier::CallFrontier(RpcClient& client, FrameType type,
                                           ByteView payload, bool idempotent,
                                           int extra_timeout_ms) const {
  auto reply = client.Call(type, payload, idempotent, extra_timeout_ms);
  if (!reply.ok()) return reply.error();
  if (!reply.value().IsReplyTo(type)) {
    if (reply.value().type == FrameType::kError) {
      return DecodeError(reply.value().payload);
    }
    return Errno::kEIO;  // FIFO answered with a mismatched type
  }
  if ((reply.value().flags & kFlagStopped) != 0) {
    remote_stopped_.store(true, std::memory_order_release);
  }
  remote_hungry_.store((reply.value().flags & kFlagHungry) != 0,
                       std::memory_order_relaxed);
  return reply;
}

mc::SharedFrontier* RemoteFrontier::Degrade(Errno error) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fallback_ == nullptr) {
    MCFS_LOG_WARN << "frontier at " << endpoint_.ToString()
                  << " unreachable (" << ErrnoName(error)
                  << "); degrading to process-local frontier — stolen "
                  << "work no longer crosses processes";
    auto fallback = std::make_unique<mc::SharedFrontier>(workers_);
    // Replay this process's busy balance so the fallback's termination
    // protocol starts from the truth: every locally-active worker is
    // busy; none of the remote processes' workers exist here.
    for (int i = 0; i < active_; ++i) fallback->WorkerStarted();
    if (stop_requested_.load(std::memory_order_relaxed) ||
        remote_stopped_.load(std::memory_order_relaxed)) {
      fallback->RequestStop();
    }
    degrade_events_.fetch_add(1, std::memory_order_relaxed);
    fallback_ = std::move(fallback);
    degraded_.store(true, std::memory_order_release);
  }
  return fallback_.get();
}

RpcClient* RemoteFrontier::StealChannel(int worker) {
  std::lock_guard<std::mutex> lock(channels_mu_);
  auto it = steal_channels_.find(worker);
  if (it == steal_channels_.end()) {
    it = steal_channels_
             .emplace(worker,
                      std::make_unique<RpcClient>(endpoint_, policy_))
             .first;
  }
  return it->second.get();
}

void RemoteFrontier::Push(mc::FrontierEntry entry) {
  if (degraded()) {
    fallback_->Push(std::move(entry));
    return;
  }
  // Not idempotent: a retry after a lost reply would enqueue the entry
  // twice, and a double-explored subtree wastes two workers.
  const Bytes payload = EncodeFrontierEntry(entry);
  auto reply = CallFrontier(main_, FrameType::kFrontierPush, payload,
                            /*idempotent=*/false);
  if (!reply.ok()) {
    // The entry must survive the server's death: park it locally.
    Degrade(reply.error())->Push(std::move(entry));
  }
}

std::optional<mc::FrontierEntry> RemoteFrontier::TrySteal(int worker) {
  if (degraded()) return fallback_->TrySteal(worker);
  StealRequest req;
  req.worker = static_cast<std::uint32_t>(worker);
  auto reply = CallFrontier(main_, FrameType::kFrontierTrySteal,
                            EncodeStealRequest(req, /*with_timeout=*/false),
                            /*idempotent=*/false);
  if (!reply.ok()) return Degrade(reply.error())->TrySteal(worker);
  auto rsp = DecodeStealResponse(reply.value().payload);
  if (!rsp.ok()) return Degrade(rsp.error())->TrySteal(worker);
  if (rsp.value().outcome == kStealEntry && rsp.value().entry.has_value()) {
    return std::move(rsp.value().entry);
  }
  return std::nullopt;
}

void RemoteFrontier::WorkerStarted() {
  std::unique_lock<std::mutex> lock(mu_);
  ++active_;
  if (fallback_ != nullptr) {
    fallback_->WorkerStarted();
    return;
  }
  lock.unlock();
  // Not idempotent (it increments the server's busy count); a failure
  // degrades, and the transition's replay — which already saw our
  // ++active_ — registers us with the fallback instead.
  auto reply = CallFrontier(main_, FrameType::kFrontierStarted, {},
                            /*idempotent=*/false);
  if (!reply.ok()) (void)Degrade(reply.error());
}

void RemoteFrontier::Retire() {
  std::unique_lock<std::mutex> lock(mu_);
  --active_;
  if (fallback_ != nullptr) {
    fallback_->Retire();
    return;
  }
  lock.unlock();
  auto reply = CallFrontier(main_, FrameType::kFrontierRetire, {},
                            /*idempotent=*/false);
  // On failure the server still counts us busy until it notices the
  // dead connection (OnDisconnect retires leaked counts). Degrading
  // here keeps the local view coherent.
  if (!reply.ok()) (void)Degrade(reply.error());
}

std::optional<mc::FrontierEntry> RemoteFrontier::StealOrTerminate(
    int worker, double* idle_seconds) {
  using Clock = std::chrono::steady_clock;
  for (;;) {
    if (degraded()) return fallback_->StealOrTerminate(worker, idle_seconds);
    if (stop_requested_.load(std::memory_order_relaxed) ||
        remote_stopped_.load(std::memory_order_relaxed)) {
      return std::nullopt;
    }

    StealRequest req;
    req.worker = static_cast<std::uint32_t>(worker);
    req.timeout_ms = kStealRoundMs;
    const auto wait_start = Clock::now();
    // Dedicated channel: the server parks this request for up to its
    // wait cap, and FIFO matching must not park anyone else's RPCs
    // behind it. The reply deadline covers the park plus margin.
    auto reply = CallFrontier(
        *StealChannel(worker), FrameType::kFrontierStealWait,
        EncodeStealRequest(req, /*with_timeout=*/true),
        /*idempotent=*/false, static_cast<int>(kStealRoundMs));
    if (idle_seconds != nullptr) {
      *idle_seconds +=
          std::chrono::duration<double>(Clock::now() - wait_start).count();
    }
    if (!reply.ok()) {
      (void)Degrade(reply.error());
      continue;  // resume the wait on the fallback
    }
    auto rsp = DecodeStealResponse(reply.value().payload);
    if (!rsp.ok()) {
      (void)Degrade(rsp.error());
      continue;
    }
    switch (rsp.value().outcome) {
      case kStealEntry:
        if (rsp.value().entry.has_value()) {
          return std::move(rsp.value().entry);
        }
        return std::nullopt;  // malformed but conclusive; treat as done
      case kStealTimeout:
        continue;  // re-arm: still live, nothing to steal yet
      case kStealDrained:
        return std::nullopt;
      case kStealStopped:
      default:
        remote_stopped_.store(true, std::memory_order_release);
        return std::nullopt;
    }
  }
}

void RemoteFrontier::RequestStop() {
  stop_requested_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (fallback_ != nullptr) {
      fallback_->RequestStop();
      return;
    }
  }
  // Idempotent by nature (stop is sticky server-side), so retries are
  // safe and worth it: this is the cross-host cancel path.
  auto reply = CallFrontier(main_, FrameType::kFrontierStop, {},
                            /*idempotent=*/true);
  if (!reply.ok()) (void)Degrade(reply.error());
}

bool RemoteFrontier::stopped() const {
  if (stop_requested_.load(std::memory_order_acquire) ||
      remote_stopped_.load(std::memory_order_acquire)) {
    return true;
  }
  return degraded() && fallback_->stopped();
}

bool RemoteFrontier::Hungry() const {
  if (degraded()) return fallback_->Hungry();
  return remote_hungry_.load(std::memory_order_relaxed);
}

void RemoteFrontier::RefreshStats() const {
  if (degraded()) return;
  auto reply = CallFrontier(main_, FrameType::kFrontierStats, {},
                            /*idempotent=*/true);
  if (!reply.ok()) return;  // keep the stale cache; stats are best-effort
  auto rsp = DecodeFrontierStats(reply.value().payload);
  if (!rsp.ok()) return;
  stat_size_.store(rsp.value().size, std::memory_order_relaxed);
  stat_peak_.store(rsp.value().peak, std::memory_order_relaxed);
  stat_pushed_.store(rsp.value().pushed, std::memory_order_relaxed);
  stat_stolen_.store(rsp.value().stolen, std::memory_order_relaxed);
}

std::uint64_t RemoteFrontier::size() const {
  RefreshStats();
  std::uint64_t total = stat_size_.load(std::memory_order_relaxed);
  if (degraded()) total += fallback_->size();
  return total;
}

std::uint64_t RemoteFrontier::peak_size() const {
  RefreshStats();
  std::uint64_t total = stat_peak_.load(std::memory_order_relaxed);
  if (degraded()) total = std::max(total, fallback_->peak_size());
  return total;
}

std::uint64_t RemoteFrontier::pushed() const {
  RefreshStats();
  std::uint64_t total = stat_pushed_.load(std::memory_order_relaxed);
  if (degraded()) total += fallback_->pushed();
  return total;
}

std::uint64_t RemoteFrontier::stolen() const {
  RefreshStats();
  std::uint64_t total = stat_stolen_.load(std::memory_order_relaxed);
  if (degraded()) total += fallback_->stolen();
  return total;
}

mc::RemoteHealth RemoteFrontier::health() const {
  mc::RemoteHealth health;
  health.degraded = degraded();
  health.degrade_events = degrade_events_.load(std::memory_order_relaxed);
  health.rpc_failures = main_.rpc_failures();
  std::lock_guard<std::mutex> lock(
      const_cast<std::mutex&>(channels_mu_));
  for (const auto& [worker, channel] : steal_channels_) {
    health.rpc_failures += channel->rpc_failures();
  }
  return health;
}

}  // namespace mcfs::net

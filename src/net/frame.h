// Length-prefixed frame codec: the unit of exchange on every MCFS
// socket (DESIGN.md §7.3).
//
// A frame is a fixed 10-byte header followed by the payload:
//
//   magic   u32  'MCFN' (0x4E46434D little-endian on the wire)
//   type    u8   FrameType — request, or request|kReplyBit for replies
//   flags   u8   reply metadata (frontier stopped/hungry bits)
//   length  u32  payload byte count, <= kMaxFramePayload
//   payload length bytes (layouts in net/wire.h)
//
// The decoder is incremental and transport-agnostic: feed it whatever
// byte runs arrive (a socket read, a test vector, a deliberately split
// delivery) and pop whole frames out. Truncation is *not* an error to
// the decoder — more bytes may still arrive; only the transport layer
// can rule that out (EOF mid-frame => kEIO). A wrong magic or an
// oversized length, on the other hand, means the stream is garbage or
// hostile and can never resynchronize: those are hard errors and the
// connection must be dropped.
#pragma once

#include <cstdint>
#include <optional>

#include "util/bytes.h"
#include "util/result.h"

namespace mcfs::net {

// On-the-wire message types. Replies echo the request type with
// kReplyBit set; kError is a reply to anything the server rejected
// (payload: i32 Errno).
enum class FrameType : std::uint8_t {
  kVisitedInsert = 0x01,
  kVisitedContains = 0x02,
  kVisitedStats = 0x03,
  kVisitedDump = 0x04,
  kFrontierPush = 0x10,
  kFrontierTrySteal = 0x11,
  kFrontierStealWait = 0x12,
  kFrontierStarted = 0x13,
  kFrontierRetire = 0x14,
  kFrontierStop = 0x15,
  kFrontierStats = 0x16,
  kError = 0x7F,
};

inline constexpr std::uint8_t kReplyBit = 0x80;

// Reply flag bits (frontier services; zero elsewhere).
inline constexpr std::uint8_t kFlagStopped = 0x01;  // sticky global stop set
inline constexpr std::uint8_t kFlagHungry = 0x02;   // frontier wants donations

inline constexpr std::uint32_t kFrameMagic = 0x4E46434D;  // "MCFN"
inline constexpr std::size_t kFrameHeaderSize = 10;
// Generous but bounded: a malicious or corrupt length field must not
// make the decoder allocate gigabytes. 16 MiB holds ~1M digests.
inline constexpr std::size_t kMaxFramePayload = 16u << 20;

struct Frame {
  FrameType type = FrameType::kError;
  std::uint8_t flags = 0;
  Bytes payload;

  bool IsReplyTo(FrameType request) const {
    return static_cast<std::uint8_t>(type) ==
           (static_cast<std::uint8_t>(request) | kReplyBit);
  }
};

// Serializes one frame (header + payload copy).
Bytes EncodeFrame(FrameType type, std::uint8_t flags, ByteView payload);

// Incremental frame parser over a byte stream.
class FrameDecoder {
 public:
  // Appends raw stream bytes (any split: byte-at-a-time works).
  void Feed(ByteView data);

  // Pops the next complete frame. nullopt: need more bytes (truncated
  // *so far* — not an error). kEINVAL: bad magic (stream corrupt,
  // unsynchronizable). kEOVERFLOW: declared payload length exceeds
  // kMaxFramePayload. After an error the decoder is poisoned: every
  // subsequent Next() repeats the error, mirroring "drop the
  // connection".
  Result<std::optional<Frame>> Next();

  // Bytes buffered but not yet consumed by a popped frame. Nonzero at
  // EOF means the peer died mid-frame.
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  Bytes buf_;
  std::size_t pos_ = 0;  // parse cursor into buf_
  Errno poison_ = Errno::kOk;
};

}  // namespace mcfs::net

#include "net/frame.h"

namespace mcfs::net {

Bytes EncodeFrame(FrameType type, std::uint8_t flags, ByteView payload) {
  ByteWriter w;
  w.PutU32(kFrameMagic);
  w.PutU8(static_cast<std::uint8_t>(type));
  w.PutU8(flags);
  w.PutU32(static_cast<std::uint32_t>(payload.size()));
  w.PutBytes(payload);
  return w.Take();
}

void FrameDecoder::Feed(ByteView data) {
  // Compact lazily: once the consumed prefix dominates the buffer, slide
  // the live suffix down so the buffer doesn't grow without bound on a
  // long-lived connection.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data.begin(), data.end());
}

Result<std::optional<Frame>> FrameDecoder::Next() {
  if (poison_ != Errno::kOk) return poison_;
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeaderSize) return std::optional<Frame>(std::nullopt);

  ByteReader r(ByteView(buf_).subspan(pos_, avail));
  const std::uint32_t magic = r.GetU32();
  if (magic != kFrameMagic) {
    poison_ = Errno::kEINVAL;
    return poison_;
  }
  const std::uint8_t type = r.GetU8();
  const std::uint8_t flags = r.GetU8();
  const std::uint32_t length = r.GetU32();
  if (length > kMaxFramePayload) {
    poison_ = Errno::kEOVERFLOW;
    return poison_;
  }
  if (avail < kFrameHeaderSize + length) {
    return std::optional<Frame>(std::nullopt);  // payload still in flight
  }

  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.flags = flags;
  ByteView payload = r.GetBytes(length);
  frame.payload.assign(payload.begin(), payload.end());
  pos_ += kFrameHeaderSize + length;
  return std::optional<Frame>(std::move(frame));
}

}  // namespace mcfs::net

// Thin POSIX socket layer: endpoints, timed connect, timed send/recv,
// and a listener — everything above it (frames, RPC, services) is
// transport-agnostic and testable without a kernel socket.
//
// Error discipline (Result<T> everywhere, no bool-plus-out-param):
//   kEAGAIN — the poll() deadline passed (timeout; retryable)
//   kEIO    — the peer vanished (EOF, ECONNRESET, EPIPE) or the host
//             socket call failed in a way we don't distinguish further
//   kEINVAL — unparseable endpoint string
// Timeouts are per-call and bounded: nothing in this file blocks
// forever, which is what lets a worker degrade to local structures
// instead of hanging when its server dies (ISSUE acceptance criterion).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/bytes.h"
#include "util/result.h"

namespace mcfs::net {

// "host:port" (TCP) or "unix:/path" (Unix-domain stream socket).
struct Endpoint {
  bool is_unix = false;
  std::string host;        // TCP only
  std::uint16_t port = 0;  // TCP only; 0 = ephemeral (resolved on Bind)
  std::string path;        // Unix only

  std::string ToString() const;
};

Result<Endpoint> ParseEndpoint(std::string_view text);

// RAII stream socket. Movable, not copyable.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Relinquishes ownership without closing (returns -1 if empty).
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  // Writes the whole buffer or fails; the timeout bounds each poll()
  // round, so total blocking is O(timeout) per short-write stall.
  Status SendAll(ByteView data, int timeout_ms);

  // Non-blocking write attempt for reactor loops: sends whatever the
  // kernel accepts right now and returns the count — 0 when the send
  // buffer is full (EAGAIN folded in; the caller re-arms on
  // writability). kEIO = peer gone.
  Result<std::size_t> SendSome(ByteView data);

  // Reads up to `len` bytes. value 0 = orderly EOF. kEAGAIN = timeout.
  Result<std::size_t> RecvSome(std::uint8_t* buf, std::size_t len,
                               int timeout_ms);

  // Unblocks any thread sleeping in RecvSome/SendAll on this socket
  // (they observe EOF/EPIPE). Safe to call from another thread.
  void Shutdown();
  void Close();

 private:
  int fd_ = -1;
};

// Timed connect (TCP or Unix per the endpoint). Nonblocking connect +
// poll, so an unreachable host costs `timeout_ms`, not a kernel sysctl.
Result<Socket> ConnectTo(const Endpoint& endpoint, int timeout_ms);

// Bound, listening socket. Bind resolves an ephemeral TCP port (port 0)
// into the real one, so tests can listen on "127.0.0.1:0" race-free.
class Listener {
 public:
  static Result<Listener> Bind(const Endpoint& endpoint);

  Listener() = default;
  ~Listener();
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  bool valid() const { return fd_.load(std::memory_order_relaxed) >= 0; }
  // Raw fd for event-loop registration (-1 once closed). The reactor
  // adds this to its epoll set; Accept() still performs the accepts.
  int fd() const { return fd_.load(std::memory_order_acquire); }
  const Endpoint& endpoint() const { return endpoint_; }

  // kEAGAIN on timeout; kEIO once Close() was called underneath.
  Result<Socket> Accept(int timeout_ms);

  // Safe from another thread; pending and future Accepts fail kEIO.
  void Close();

 private:
  // Atomic because Close() races with the accept thread's reads; the
  // fd itself is only ever closed once (Close exchanges it out).
  std::atomic<int> fd_{-1};
  Endpoint endpoint_;
};

}  // namespace mcfs::net

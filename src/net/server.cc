#include "net/server.h"

#include <sys/socket.h>

#include "net/wire.h"
#include "util/log.h"

namespace mcfs::net {

namespace {
// Read timeout per poll round on a connection. Short enough that a
// stopping server joins its threads promptly, long enough to be
// invisible in steady state (the loop just re-polls on kEAGAIN).
constexpr int kReadRoundMs = 200;
// Send timeout for replies. A client that stops draining its socket for
// this long is dead weight; drop it.
constexpr int kSendTimeoutMs = 5000;
}  // namespace

FrameServer::FrameServer(std::vector<FrameService*> services)
    : services_(std::move(services)) {}

FrameServer::~FrameServer() { Stop(); }

Status FrameServer::Start(const Endpoint& listen) {
  auto bound = Listener::Bind(listen);
  if (!bound.ok()) return bound.error();
  listener_ = std::move(bound.value());
  endpoint_ = listener_.endpoint();
  running_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void FrameServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Second caller: threads are joined (or being joined) by the
      // first; nothing left to do.
    }
    stopping_ = true;
    for (auto& [id, fd] : live_fds_) {
      (void)::shutdown(fd, SHUT_RDWR);  // wakes the connection thread
    }
  }
  listener_.Close();  // wakes the accept thread
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  running_ = false;
}

std::uint64_t FrameServer::connections_accepted() const {
  std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(mu_));
  return accepted_;
}

void FrameServer::AcceptLoop() {
  for (;;) {
    auto conn = listener_.Accept(kReadRoundMs);
    if (!conn.ok()) {
      if (conn.error() == Errno::kEAGAIN) {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_) return;
        continue;
      }
      return;  // listener closed
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    const std::uint64_t conn_id = next_conn_id_++;
    ++accepted_;
    live_fds_[conn_id] = conn.value().fd();
    Socket socket = std::move(conn.value());
    conn_threads_.emplace_back(
        [this, conn_id, sock = std::move(socket)]() mutable {
          ServeConnection(std::move(sock), conn_id);
        });
  }
}

void FrameServer::ServeConnection(Socket socket, std::uint64_t conn_id) {
  FrameDecoder decoder;
  std::uint8_t buf[16 * 1024];
  bool alive = true;
  while (alive) {
    // Drain every complete frame before reading more: pipelined
    // requests are answered back-to-back without extra socket reads.
    for (;;) {
      auto next = decoder.Next();
      if (!next.ok()) {
        // Corrupt stream (bad magic / oversized length): tell the peer
        // once, then drop — there is no way to resynchronize.
        Bytes err = EncodeFrame(FrameType::kError, 0,
                                EncodeError(next.error()));
        (void)socket.SendAll(err, kSendTimeoutMs);
        alive = false;
        break;
      }
      if (!next.value().has_value()) break;  // need more bytes
      const Frame& request = *next.value();

      FrameService* service = nullptr;
      for (FrameService* s : services_) {
        if (s->Handles(request.type)) {
          service = s;
          break;
        }
      }
      Bytes reply_bytes;
      if (service == nullptr) {
        reply_bytes = EncodeFrame(FrameType::kError, 0,
                                  EncodeError(Errno::kENOTSUP));
      } else {
        auto reply = service->Handle(request, conn_id);
        if (reply.ok()) {
          reply_bytes = EncodeFrame(reply.value().type, reply.value().flags,
                                    reply.value().payload);
        } else {
          reply_bytes = EncodeFrame(FrameType::kError, 0,
                                    EncodeError(reply.error()));
        }
      }
      if (!socket.SendAll(reply_bytes, kSendTimeoutMs).ok()) {
        alive = false;
        break;
      }
    }
    if (!alive) break;

    auto n = socket.RecvSome(buf, sizeof(buf), kReadRoundMs);
    if (!n.ok()) {
      if (n.error() == Errno::kEAGAIN) {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_) break;
        continue;
      }
      break;  // peer reset / socket shut down
    }
    if (n.value() == 0) break;  // orderly EOF
    decoder.Feed(ByteView(buf, n.value()));
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    live_fds_.erase(conn_id);
  }
  for (FrameService* s : services_) s->OnDisconnect(conn_id);
}

}  // namespace mcfs::net

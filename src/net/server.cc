#include "net/server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <deque>
#include <unordered_map>

#include "net/wire.h"
#include "util/log.h"

namespace mcfs::net {

namespace {
// Read timeout per poll round on a legacy connection thread. Short
// enough that a stopping server joins its threads promptly, long enough
// to be invisible in steady state (the loop just re-polls on kEAGAIN).
constexpr int kReadRoundMs = 200;
// Send timeout for legacy-mode replies. A client that stops draining
// its socket for this long is dead weight; drop it.
constexpr int kSendTimeoutMs = 5000;
// Read chunk for both models.
constexpr std::size_t kReadChunk = 64 * 1024;

// epoll_event user-data sentinels for the shard's own fds; connection
// ids start at 1 and never reach these.
constexpr std::uint64_t kWakeData = ~std::uint64_t{0};
constexpr std::uint64_t kListenData = ~std::uint64_t{0} - 1;

Bytes EncodeReply(const Result<Frame>& reply) {
  if (reply.ok()) {
    return EncodeFrame(reply.value().type, reply.value().flags,
                       reply.value().payload);
  }
  return EncodeFrame(FrameType::kError, 0, EncodeError(reply.error()));
}
}  // namespace

namespace internal {

// One FIFO reply slot: requests enter in arrival order; the slot holds
// the (possibly later-arriving) reply until every earlier slot has been
// encoded, so deferred completion can never reorder a connection's
// replies.
struct PendingReply {
  std::uint64_t slot = 0;
  bool done = false;
  Result<Frame> reply = Errno::kEIO;
};

struct Conn {
  std::uint64_t id = 0;
  Socket socket;
  FrameDecoder decoder;
  std::deque<PendingReply> pending;
  std::uint64_t next_slot = 1;
  Bytes outbuf;              // encoded replies not yet accepted by the kernel
  std::size_t out_off = 0;   // consumed prefix of outbuf
  std::uint32_t events = 0;  // epoll interest currently registered
  bool read_paused = false;  // backpressure: EPOLLIN dropped
  bool draining = false;     // poisoned stream: close once replies flush
};

// A completed deferred reply in flight back to its owning shard.
struct Completion {
  std::uint64_t conn_id = 0;
  std::uint64_t slot = 0;
  Result<Frame> reply = Errno::kEIO;
};

struct ReactorShard : std::enable_shared_from_this<ReactorShard> {
  FrameServer* server = nullptr;
  std::vector<FrameService*> services;
  ServerOptions options;
  bool owns_listener = false;  // shard 0 runs the accept path

  int epfd = -1;
  int wakefd = -1;
  std::thread thread;
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns;

  std::mutex mu;  // guards the cross-thread inboxes below
  std::vector<Completion> completions;
  std::vector<std::pair<std::uint64_t, Socket>> incoming;
  bool stop_requested = false;

  ~ReactorShard() {
    if (epfd >= 0) ::close(epfd);
    if (wakefd >= 0) ::close(wakefd);
  }

  Status Init() {
    epfd = ::epoll_create1(0);
    if (epfd < 0) return Errno::kEIO;
    wakefd = ::eventfd(0, EFD_NONBLOCK);
    if (wakefd < 0) return Errno::kEIO;
    struct epoll_event ev = {};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeData;
    if (::epoll_ctl(epfd, EPOLL_CTL_ADD, wakefd, &ev) < 0) return Errno::kEIO;
    return Status::Ok();
  }

  void Wake() {
    const std::uint64_t one = 1;
    (void)!::write(wakefd, &one, sizeof(one));
  }

  void EnqueueCompletion(Completion completion) {
    {
      std::lock_guard<std::mutex> lock(mu);
      completions.push_back(std::move(completion));
    }
    Wake();
  }

  void AssignConn(std::uint64_t conn_id, Socket socket) {
    {
      std::lock_guard<std::mutex> lock(mu);
      incoming.emplace_back(conn_id, std::move(socket));
    }
    Wake();
  }

  void RequestStop() {
    {
      std::lock_guard<std::mutex> lock(mu);
      stop_requested = true;
    }
    Wake();
  }

  void Loop();

 private:
  void UpdateInterest(Conn& conn) {
    std::uint32_t want = 0;
    if (!conn.read_paused && !conn.draining) want |= EPOLLIN;
    if (conn.out_off < conn.outbuf.size()) want |= EPOLLOUT;
    if (want == conn.events) return;
    struct epoll_event ev = {};
    ev.events = want;
    ev.data.u64 = conn.id;
    (void)::epoll_ctl(epfd, EPOLL_CTL_MOD, conn.socket.fd(), &ev);
    conn.events = want;
  }

  void RegisterConn(std::uint64_t conn_id, Socket socket) {
    auto conn = std::make_unique<Conn>();
    conn->id = conn_id;
    conn->socket = std::move(socket);
    struct epoll_event ev = {};
    ev.events = EPOLLIN;
    ev.data.u64 = conn_id;
    if (::epoll_ctl(epfd, EPOLL_CTL_ADD, conn->socket.fd(), &ev) < 0) {
      for (FrameService* s : services) s->OnDisconnect(conn_id);
      return;
    }
    conn->events = EPOLLIN;
    conns.emplace(conn_id, std::move(conn));
  }

  // Removes the connection and fires OnDisconnect. Erase-before-notify:
  // a service completing parked tokens from OnDisconnect must find the
  // connection gone so those completions drop instead of reviving it.
  void CloseConn(std::uint64_t conn_id) {
    auto it = conns.find(conn_id);
    if (it == conns.end()) return;
    std::unique_ptr<Conn> conn = std::move(it->second);
    conns.erase(it);
    (void)::epoll_ctl(epfd, EPOLL_CTL_DEL, conn->socket.fd(), nullptr);
    for (FrameService* s : services) s->OnDisconnect(conn_id);
  }

  // Encodes every completed head slot, pushes bytes to the kernel, and
  // recomputes interest + backpressure. Returns false if the peer died.
  bool Flush(Conn& conn) {
    while (!conn.pending.empty() && conn.pending.front().done) {
      const Bytes bytes = EncodeReply(conn.pending.front().reply);
      conn.outbuf.insert(conn.outbuf.end(), bytes.begin(), bytes.end());
      conn.pending.pop_front();
    }
    if (conn.out_off < conn.outbuf.size()) {
      auto sent = conn.socket.SendSome(
          ByteView(conn.outbuf.data() + conn.out_off,
                   conn.outbuf.size() - conn.out_off));
      if (!sent.ok()) return false;
      conn.out_off += sent.value();
      if (conn.out_off == conn.outbuf.size()) {
        conn.outbuf.clear();
        conn.out_off = 0;
      } else if (conn.out_off > kReadChunk) {
        // Compact occasionally so a slow-draining peer's buffer does
        // not keep its consumed prefix alive forever.
        conn.outbuf.erase(conn.outbuf.begin(),
                          conn.outbuf.begin() +
                              static_cast<std::ptrdiff_t>(conn.out_off));
        conn.out_off = 0;
      }
    }
    const std::size_t backlog = conn.outbuf.size() - conn.out_off;
    if (!conn.read_paused && backlog > options.max_write_buffer) {
      conn.read_paused = true;
    } else if (conn.read_paused && backlog < options.max_write_buffer / 2) {
      conn.read_paused = false;
    }
    if (conn.draining && conn.pending.empty() && backlog == 0) {
      return false;  // poisoned stream fully answered: drop it
    }
    UpdateInterest(conn);
    return true;
  }

  void Dispatch(Conn& conn, const Frame& request) {
    FrameService* service = nullptr;
    for (FrameService* s : services) {
      if (s->Handles(request.type)) {
        service = s;
        break;
      }
    }
    PendingReply slot;
    slot.slot = conn.next_slot++;
    if (service == nullptr) {
      slot.done = true;
      slot.reply = Errno::kENOTSUP;
      conn.pending.push_back(std::move(slot));
      return;
    }
    conn.pending.push_back(std::move(slot));
    auto token = std::make_shared<ReplyToken>(weak_from_this(), conn.id,
                                              conn.next_slot - 1);
    service->HandleAsync(request, conn.id, std::move(token));
  }

  // Reads once, decodes every complete frame, dispatches them. Returns
  // false when the connection should close now.
  bool Read(Conn& conn) {
    std::uint8_t buf[kReadChunk];
    auto n = conn.socket.RecvSome(buf, sizeof(buf), /*timeout_ms=*/0);
    if (!n.ok()) return n.error() == Errno::kEAGAIN;
    if (n.value() == 0) return false;  // orderly EOF
    conn.decoder.Feed(ByteView(buf, n.value()));
    for (;;) {
      auto next = conn.decoder.Next();
      if (!next.ok()) {
        // Corrupt stream (bad magic / oversized length): answer every
        // already-decoded request, then one kError, then drop — there
        // is no way to resynchronize.
        PendingReply poison;
        poison.slot = conn.next_slot++;
        poison.done = true;
        poison.reply = next.error();
        conn.pending.push_back(std::move(poison));
        conn.draining = true;
        return true;
      }
      if (!next.value().has_value()) return true;  // need more bytes
      Dispatch(conn, *next.value());
    }
  }

  void HandleConnEvent(std::uint64_t conn_id, std::uint32_t events) {
    auto it = conns.find(conn_id);
    if (it == conns.end()) return;  // closed earlier in this batch
    Conn& conn = *it->second;
    if ((events & (EPOLLERR | EPOLLHUP)) != 0 && (events & EPOLLIN) == 0) {
      CloseConn(conn_id);
      return;
    }
    if ((events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0) {
      if (!Read(conn)) {
        CloseConn(conn_id);
        return;
      }
    }
    if (!Flush(conn)) CloseConn(conn_id);
  }

  void ApplyCompletion(Completion&& completion) {
    auto it = conns.find(completion.conn_id);
    if (it == conns.end()) return;  // connection died while deferred
    Conn& conn = *it->second;
    for (PendingReply& slot : conn.pending) {
      if (slot.slot == completion.slot) {
        if (!slot.done) {
          slot.done = true;
          slot.reply = std::move(completion.reply);
        }
        break;
      }
    }
    if (!Flush(conn)) CloseConn(completion.conn_id);
  }

  // Drains the cross-thread inboxes. Returns false once stop was
  // requested.
  bool DrainInbox() {
    std::uint64_t counter = 0;
    (void)!::read(wakefd, &counter, sizeof(counter));
    std::vector<Completion> ready;
    std::vector<std::pair<std::uint64_t, Socket>> fresh;
    bool stop = false;
    {
      std::lock_guard<std::mutex> lock(mu);
      ready.swap(completions);
      fresh.swap(incoming);
      stop = stop_requested;
    }
    for (auto& [conn_id, socket] : fresh) {
      RegisterConn(conn_id, std::move(socket));
    }
    for (Completion& completion : ready) {
      ApplyCompletion(std::move(completion));
    }
    return !stop;
  }

  void Accept();
};

void ReactorShard::Accept() {
  for (;;) {
    auto conn = server->listener_.Accept(/*timeout_ms=*/0);
    if (!conn.ok()) return;  // kEAGAIN (drained) or listener closed
    const std::uint64_t conn_id =
        server->next_conn_id_.fetch_add(1, std::memory_order_relaxed);
    server->accepted_.fetch_add(1, std::memory_order_relaxed);
    auto& shards = server->shards_;
    ReactorShard* target =
        shards[static_cast<std::size_t>(conn_id) % shards.size()].get();
    if (target == this) {
      RegisterConn(conn_id, std::move(conn.value()));
    } else {
      target->AssignConn(conn_id, std::move(conn.value()));
    }
  }
}

void ReactorShard::Loop() {
  using Clock = std::chrono::steady_clock;
  if (owns_listener) {
    struct epoll_event ev = {};
    ev.events = EPOLLIN;
    ev.data.u64 = kListenData;
    (void)::epoll_ctl(epfd, EPOLL_CTL_ADD, server->listener_.fd(), &ev);
  }
  auto last_tick = Clock::now();
  std::vector<struct epoll_event> events(64);
  for (;;) {
    if (!DrainInbox()) break;
    const auto now = Clock::now();
    if (now - last_tick >= std::chrono::milliseconds(options.tick_ms)) {
      last_tick = now;
      for (FrameService* s : services) s->OnTick();
    }
    const int n = ::epoll_wait(epfd, events.data(),
                               static_cast<int>(events.size()),
                               options.tick_ms);
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < std::max(n, 0); ++i) {
      const std::uint64_t data = events[static_cast<std::size_t>(i)].data.u64;
      const std::uint32_t mask = events[static_cast<std::size_t>(i)].events;
      if (data == kWakeData) continue;  // drained at loop top
      if (data == kListenData) {
        Accept();
        continue;
      }
      HandleConnEvent(data, mask);
    }
  }
  // Teardown: close every connection with full OnDisconnect semantics.
  while (!conns.empty()) CloseConn(conns.begin()->first);
}

}  // namespace internal

ReplyToken::ReplyToken(std::weak_ptr<internal::ReactorShard> shard,
                       std::uint64_t conn_id, std::uint64_t slot)
    : shard_(std::move(shard)), conn_id_(conn_id), slot_(slot) {}

ReplyToken::~ReplyToken() {
  if (!completed_.load(std::memory_order_acquire)) {
    // A dropped request must still answer, or the FIFO pipeline behind
    // it wedges forever.
    Complete(Errno::kEIO);
  }
}

void ReplyToken::Complete(Result<Frame> reply) {
  if (completed_.exchange(true, std::memory_order_acq_rel)) return;
  auto shard = shard_.lock();
  if (!shard) return;  // server already gone; nobody to answer
  internal::Completion completion;
  completion.conn_id = conn_id_;
  completion.slot = slot_;
  completion.reply = std::move(reply);
  shard->EnqueueCompletion(std::move(completion));
}

FrameServer::FrameServer(std::vector<FrameService*> services,
                         ServerOptions options)
    : services_(std::move(services)), options_(options) {}

FrameServer::~FrameServer() { Stop(); }

Status FrameServer::Start(const Endpoint& listen) {
  auto bound = Listener::Bind(listen);
  if (!bound.ok()) return bound.error();
  listener_ = std::move(bound.value());
  endpoint_ = listener_.endpoint();
  stopping_.store(false, std::memory_order_release);

  if (options_.model == ServerOptions::Model::kThreadPerConn) {
    running_.store(true, std::memory_order_release);
    accept_thread_ = std::thread([this] { AcceptLoop(); });
    return Status::Ok();
  }

  const int shard_count = std::max(1, options_.reactor_shards);
  shards_.reserve(static_cast<std::size_t>(shard_count));
  for (int i = 0; i < shard_count; ++i) {
    auto shard = std::make_shared<internal::ReactorShard>();
    shard->server = this;
    shard->services = services_;
    shard->options = options_;
    shard->owns_listener = (i == 0);
    if (Status init = shard->Init(); !init.ok()) {
      shards_.clear();
      listener_.Close();
      return init;
    }
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    shard->thread = std::thread([s = shard.get()] { s->Loop(); });
  }
  running_.store(true, std::memory_order_release);
  return Status::Ok();
}

void FrameServer::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    // Second caller: threads are joined (or being joined) by the first;
    // nothing left to do.
    return;
  }
  if (options_.model == ServerOptions::Model::kThreadPerConn) {
    listener_.Close();  // wakes the blocking Accept
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& [id, fd] : live_fds_) {
        (void)::shutdown(fd, SHUT_RDWR);  // wakes the connection thread
      }
    }
    if (accept_thread_.joinable()) accept_thread_.join();
    std::vector<std::thread> threads;
    {
      std::lock_guard<std::mutex> lock(mu_);
      threads.swap(conn_threads_);
    }
    for (std::thread& t : threads) {
      if (t.joinable()) t.join();
    }
  } else {
    for (auto& shard : shards_) shard->RequestStop();
    for (auto& shard : shards_) {
      if (shard->thread.joinable()) shard->thread.join();
    }
    shards_.clear();  // late ReplyToken completions now no-op
    // Close only after the shards are joined: shard 0 keeps the listen fd
    // registered in its epoll set, and closing an fd another thread is
    // polling is a race (the fd number can be reused mid-epoll_ctl). The
    // reactor wakes via its eventfd, so it never needed the close to stop.
    listener_.Close();
  }
  running_.store(false, std::memory_order_release);
}

int FrameServer::serving_threads() const {
  if (!running()) return 0;
  if (options_.model == ServerOptions::Model::kThreadPerConn) {
    std::lock_guard<std::mutex> lock(mu_);
    return 1 + static_cast<int>(live_fds_.size());
  }
  return static_cast<int>(shards_.size());
}

// --- legacy thread-per-connection model ----------------------------

void FrameServer::AcceptLoop() {
  for (;;) {
    auto conn = listener_.Accept(kReadRoundMs);
    if (!conn.ok()) {
      if (conn.error() == Errno::kEAGAIN) {
        if (stopping_.load(std::memory_order_acquire)) return;
        continue;
      }
      return;  // listener closed
    }
    if (stopping_.load(std::memory_order_acquire)) return;
    const std::uint64_t conn_id =
        next_conn_id_.fetch_add(1, std::memory_order_relaxed);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    live_fds_[conn_id] = conn.value().fd();
    Socket socket = std::move(conn.value());
    conn_threads_.emplace_back(
        [this, conn_id, sock = std::move(socket)]() mutable {
          ServeConnection(std::move(sock), conn_id);
        });
  }
}

void FrameServer::ServeConnection(Socket socket, std::uint64_t conn_id) {
  FrameDecoder decoder;
  std::uint8_t buf[16 * 1024];
  bool alive = true;
  while (alive) {
    // Drain every complete frame before reading more: pipelined
    // requests are answered back-to-back without extra socket reads.
    for (;;) {
      auto next = decoder.Next();
      if (!next.ok()) {
        // Corrupt stream (bad magic / oversized length): tell the peer
        // once, then drop — there is no way to resynchronize.
        Bytes err = EncodeFrame(FrameType::kError, 0,
                                EncodeError(next.error()));
        (void)socket.SendAll(err, kSendTimeoutMs);
        alive = false;
        break;
      }
      if (!next.value().has_value()) break;  // need more bytes
      const Frame& request = *next.value();

      FrameService* service = nullptr;
      for (FrameService* s : services_) {
        if (s->Handles(request.type)) {
          service = s;
          break;
        }
      }
      Bytes reply_bytes;
      if (service == nullptr) {
        reply_bytes = EncodeFrame(FrameType::kError, 0,
                                  EncodeError(Errno::kENOTSUP));
      } else {
        auto reply = service->Handle(request, conn_id);
        reply_bytes = EncodeReply(reply);
      }
      if (!socket.SendAll(reply_bytes, kSendTimeoutMs).ok()) {
        alive = false;
        break;
      }
    }
    if (!alive) break;

    auto n = socket.RecvSome(buf, sizeof(buf), kReadRoundMs);
    if (!n.ok()) {
      if (n.error() == Errno::kEAGAIN) {
        if (stopping_.load(std::memory_order_acquire)) break;
        continue;
      }
      break;  // peer reset / socket shut down
    }
    if (n.value() == 0) break;  // orderly EOF
    decoder.Feed(ByteView(buf, n.value()));
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    live_fds_.erase(conn_id);
  }
  for (FrameService* s : services_) s->OnDisconnect(conn_id);
}

}  // namespace mcfs::net

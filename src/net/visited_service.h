// VisitedService: serves a VisitedStore over frames — the server half
// of the socket-sharded visited store (`visited_server` daemon).
//
// The store it wraps is the ordinary in-process ShardedVisitedTable:
// digests shard by their hi64 top bits exactly as they do for local
// swarms (DESIGN.md §7.3 — one sharding function, two deployments).
// The service is a thin translation layer: decode → store call →
// encode; every reply carries the store's aggregate counters so
// clients keep size()/bytes_used()/resize_count() hot without extra
// round-trips.
//
// Thread-safety comes from the store itself (its interface contract is
// concurrent-callable), so any number of connection threads may call
// Handle in parallel.
#pragma once

#include "mc/visited_store.h"
#include "net/server.h"

namespace mcfs::net {

class VisitedService final : public FrameService {
 public:
  // The store is borrowed and must outlive the service.
  explicit VisitedService(mc::VisitedStore* store) : store_(store) {}

  bool Handles(FrameType type) const override;
  Result<Frame> Handle(const Frame& request, std::uint64_t conn_id) override;

 private:
  mc::VisitedStore* const store_;
};

}  // namespace mcfs::net

// RpcClient: one connection, many concurrent callers, strict FIFO
// request/reply matching.
//
// The protocol has no request IDs — a server answers each connection's
// requests in arrival order (see server.h) — so matching is a queue
// discipline, not a correlation map: the i-th reply on the socket
// belongs to the i-th request written to it. Pipelining falls out for
// free: several workers' requests can be in flight at once and each
// round-trip is amortized across them.
//
// Reader handoff: there is no dedicated reader thread. The first caller
// whose reply hasn't arrived claims the reader role, reads frames off
// the socket (assigning each to the oldest pending ticket), and
// relinquishes the role when its own reply shows up; a remaining waiter
// takes over. Callers therefore block only inside this class, with
// every socket wait bounded by the retry policy's timeouts.
//
// Failure model: any socket error or timeout *breaks* the connection —
// after a lost or late reply the FIFO correspondence is unknowable, so
// all in-flight calls fail and the next call reconnects from scratch.
// Idempotent calls (visited-store reads/inserts, frontier stop) are
// retried with exponential backoff; non-idempotent ones (push, steal)
// fail fast and leave recovery to the caller. rpc_failures() counts
// every failed attempt for SwarmResult's health accounting.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "net/frame.h"
#include "net/socket.h"

namespace mcfs::net {

struct RetryPolicy {
  int attempts = 3;          // total tries for idempotent calls
  int backoff_ms = 10;       // first retry delay; doubles per retry
  int call_timeout_ms = 2000;     // per-attempt wait for the reply
  int connect_timeout_ms = 1000;  // per-attempt connect budget
};

class RpcClient {
 public:
  RpcClient(Endpoint endpoint, RetryPolicy policy);
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  // Sends `type`+`payload` and returns the matching reply frame (which
  // may be a successful reply or decode to a server-side kError —
  // callers check IsReplyTo). `idempotent` enables the retry loop.
  // `extra_timeout_ms` widens this call's reply deadline beyond the
  // policy (a StealWait sleeps server-side by design, so its reply is
  // legitimately slow).
  Result<Frame> Call(FrameType type, ByteView payload, bool idempotent,
                     int extra_timeout_ms = 0);

  // Failed attempts (timeouts, resets, refused connects) to date.
  std::uint64_t rpc_failures() const {
    return failures_.load(std::memory_order_relaxed);
  }

  const Endpoint& endpoint() const { return endpoint_; }

 private:
  // One attempt: connect if needed, enqueue, send, await the FIFO reply.
  Result<Frame> CallOnce(FrameType type, ByteView payload,
                         int reply_timeout_ms);
  // Marks the connection broken and fails every pending ticket.
  // Requires mu_ held.
  void BreakLocked(Errno error);

  const Endpoint endpoint_;
  const RetryPolicy policy_;

  std::mutex mu_;
  std::condition_variable cv_;
  Socket socket_;            // guarded by mu_ for send; reader reads unlocked
  bool connected_ = false;
  bool reader_busy_ = false;
  std::uint64_t next_ticket_ = 0;
  std::deque<std::uint64_t> fifo_;  // tickets awaiting replies, send order
  std::unordered_map<std::uint64_t, Frame> ready_;    // arrived replies
  std::unordered_map<std::uint64_t, Errno> failed_;   // broken tickets
  FrameDecoder decoder_;
  std::atomic<std::uint64_t> failures_{0};
};

}  // namespace mcfs::net

#include "net/frontier_service.h"

#include <algorithm>

#include "net/wire.h"
#include "util/log.h"

namespace mcfs::net {

namespace {

std::uint8_t OutcomeByte(mc::SharedFrontier::StealWait outcome) {
  switch (outcome) {
    case mc::SharedFrontier::StealWait::kEntry: return kStealEntry;
    case mc::SharedFrontier::StealWait::kTimeout: return kStealTimeout;
    case mc::SharedFrontier::StealWait::kDrained: return kStealDrained;
    case mc::SharedFrontier::StealWait::kStopped: return kStealStopped;
  }
  return kStealTimeout;
}

}  // namespace

bool FrontierService::Handles(FrameType type) const {
  switch (type) {
    case FrameType::kFrontierPush:
    case FrameType::kFrontierTrySteal:
    case FrameType::kFrontierStealWait:
    case FrameType::kFrontierStarted:
    case FrameType::kFrontierRetire:
    case FrameType::kFrontierStop:
    case FrameType::kFrontierStats:
      return true;
    default:
      return false;
  }
}

Result<Frame> FrontierService::Handle(const Frame& request,
                                      std::uint64_t conn_id) {
  Frame reply;
  reply.type = static_cast<FrameType>(
      static_cast<std::uint8_t>(request.type) | kReplyBit);

  switch (request.type) {
    case FrameType::kFrontierPush: {
      auto entry = DecodeFrontierEntry(request.payload);
      if (!entry.ok()) return entry.error();
      frontier_->Push(std::move(entry.value()));
      break;
    }
    case FrameType::kFrontierTrySteal: {
      auto req = DecodeStealRequest(request.payload, /*with_timeout=*/false);
      if (!req.ok()) return req.error();
      StealResponse rsp;
      if (auto entry =
              frontier_->TrySteal(static_cast<int>(req.value().worker))) {
        rsp.outcome = kStealEntry;
        rsp.entry = std::move(entry);
      } else {
        rsp.outcome = kStealTimeout;
      }
      reply.payload = EncodeStealResponse(rsp);
      break;
    }
    case FrameType::kFrontierStealWait: {
      auto req = DecodeStealRequest(request.payload, /*with_timeout=*/true);
      if (!req.ok()) return req.error();
      const std::uint32_t wait_ms = std::min(req.value().timeout_ms, kMaxWaitMs);
      auto round = frontier_->StealOrTerminateFor(
          static_cast<int>(req.value().worker),
          std::chrono::milliseconds(wait_ms), nullptr);
      StealResponse rsp;
      rsp.outcome = OutcomeByte(round.outcome);
      rsp.entry = std::move(round.entry);
      reply.payload = EncodeStealResponse(rsp);
      break;
    }
    case FrameType::kFrontierStarted: {
      frontier_->WorkerStarted();
      std::lock_guard<std::mutex> lock(mu_);
      ++busy_balance_[conn_id];
      break;
    }
    case FrameType::kFrontierRetire: {
      frontier_->Retire();
      std::lock_guard<std::mutex> lock(mu_);
      --busy_balance_[conn_id];
      break;
    }
    case FrameType::kFrontierStop: {
      frontier_->RequestStop();
      break;
    }
    case FrameType::kFrontierStats: {
      FrontierStats stats;
      stats.size = frontier_->size();
      stats.peak = frontier_->peak_size();
      stats.pushed = frontier_->pushed();
      stats.stolen = frontier_->stolen();
      reply.payload = EncodeFrontierStats(stats);
      break;
    }
    default:
      return Errno::kENOTSUP;
  }

  if (frontier_->stopped()) reply.flags |= kFlagStopped;
  if (frontier_->Hungry()) reply.flags |= kFlagHungry;
  return reply;
}

void FrontierService::OnDisconnect(std::uint64_t conn_id) {
  int leaked = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = busy_balance_.find(conn_id);
    if (it != busy_balance_.end()) {
      leaked = it->second;
      busy_balance_.erase(it);
    }
  }
  if (leaked > 0) {
    MCFS_LOG_WARN << "frontier: connection " << conn_id << " died with "
                  << leaked << " busy workers; retiring them so "
                  << "termination detection can conclude";
    for (int i = 0; i < leaked; ++i) frontier_->Retire();
  }
}

}  // namespace mcfs::net

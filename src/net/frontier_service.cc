#include "net/frontier_service.h"

#include <algorithm>

#include "net/wire.h"
#include "util/log.h"

namespace mcfs::net {

namespace {

std::uint8_t OutcomeByte(mc::SharedFrontier::StealWait outcome) {
  switch (outcome) {
    case mc::SharedFrontier::StealWait::kEntry: return kStealEntry;
    case mc::SharedFrontier::StealWait::kTimeout: return kStealTimeout;
    case mc::SharedFrontier::StealWait::kDrained: return kStealDrained;
    case mc::SharedFrontier::StealWait::kStopped: return kStealStopped;
  }
  return kStealTimeout;
}

}  // namespace

bool FrontierService::Handles(FrameType type) const {
  switch (type) {
    case FrameType::kFrontierPush:
    case FrameType::kFrontierTrySteal:
    case FrameType::kFrontierStealWait:
    case FrameType::kFrontierStarted:
    case FrameType::kFrontierRetire:
    case FrameType::kFrontierStop:
    case FrameType::kFrontierStats:
      return true;
    default:
      return false;
  }
}

Result<Frame> FrontierService::Handle(const Frame& request,
                                      std::uint64_t conn_id) {
  Frame reply;
  reply.type = static_cast<FrameType>(
      static_cast<std::uint8_t>(request.type) | kReplyBit);

  switch (request.type) {
    case FrameType::kFrontierPush: {
      auto entry = DecodeFrontierEntry(request.payload);
      if (!entry.ok()) return entry.error();
      frontier_->Push(std::move(entry.value()));
      break;
    }
    case FrameType::kFrontierTrySteal: {
      auto req = DecodeStealRequest(request.payload, /*with_timeout=*/false);
      if (!req.ok()) return req.error();
      StealResponse rsp;
      if (auto entry =
              frontier_->TrySteal(static_cast<int>(req.value().worker))) {
        rsp.outcome = kStealEntry;
        rsp.entry = std::move(entry);
      } else {
        rsp.outcome = kStealTimeout;
      }
      reply.payload = EncodeStealResponse(rsp);
      break;
    }
    case FrameType::kFrontierStealWait: {
      auto req = DecodeStealRequest(request.payload, /*with_timeout=*/true);
      if (!req.ok()) return req.error();
      const std::uint32_t wait_ms = std::min(req.value().timeout_ms, kMaxWaitMs);
      auto round = frontier_->StealOrTerminateFor(
          static_cast<int>(req.value().worker),
          std::chrono::milliseconds(wait_ms), nullptr);
      StealResponse rsp;
      rsp.outcome = OutcomeByte(round.outcome);
      rsp.entry = std::move(round.entry);
      reply.payload = EncodeStealResponse(rsp);
      break;
    }
    case FrameType::kFrontierStarted: {
      frontier_->WorkerStarted();
      std::lock_guard<std::mutex> lock(mu_);
      ++busy_balance_[conn_id];
      break;
    }
    case FrameType::kFrontierRetire: {
      frontier_->Retire();
      std::lock_guard<std::mutex> lock(mu_);
      --busy_balance_[conn_id];
      break;
    }
    case FrameType::kFrontierStop: {
      frontier_->RequestStop();
      break;
    }
    case FrameType::kFrontierStats: {
      FrontierStats stats;
      stats.size = frontier_->size();
      stats.peak = frontier_->peak_size();
      stats.pushed = frontier_->pushed();
      stats.stolen = frontier_->stolen();
      reply.payload = EncodeFrontierStats(stats);
      break;
    }
    default:
      return Errno::kENOTSUP;
  }

  if (frontier_->stopped()) reply.flags |= kFlagStopped;
  if (frontier_->Hungry()) reply.flags |= kFlagHungry;
  return reply;
}

Frame FrontierService::MakeStealReply(
    mc::SharedFrontier::StealWaitResult round) {
  Frame reply;
  reply.type = static_cast<FrameType>(
      static_cast<std::uint8_t>(FrameType::kFrontierStealWait) | kReplyBit);
  StealResponse rsp;
  rsp.outcome = OutcomeByte(round.outcome);
  rsp.entry = std::move(round.entry);
  reply.payload = EncodeStealResponse(rsp);
  if (frontier_->stopped()) reply.flags |= kFlagStopped;
  if (frontier_->Hungry()) reply.flags |= kFlagHungry;
  return reply;
}

void FrontierService::HandleAsync(const Frame& request, std::uint64_t conn_id,
                                  ReplyTokenPtr token) {
  if (request.type != FrameType::kFrontierStealWait) {
    token->Complete(Handle(request, conn_id));
    switch (request.type) {
      case FrameType::kFrontierPush:
      case FrameType::kFrontierRetire:
      case FrameType::kFrontierStop:
        // Work (or a verdict) may have arrived for a parked wait;
        // conclude now instead of waiting for the next tick.
        PollParked();
        break;
      default:
        break;
    }
    return;
  }

  auto req = DecodeStealRequest(request.payload, /*with_timeout=*/true);
  if (!req.ok()) {
    token->Complete(req.error());
    return;
  }
  const int worker = static_cast<int>(req.value().worker);
  auto round = frontier_->BeginWait(worker);
  if (round.outcome != mc::SharedFrontier::StealWait::kTimeout) {
    token->Complete(MakeStealReply(std::move(round)));
    return;
  }
  // Parked: the frontier-side wait is live (worker counts idle). The
  // reply token sits on the deadline list; no thread sleeps for it.
  const std::uint32_t wait_ms = std::min(req.value().timeout_ms, kMaxWaitMs);
  ParkedWait parked;
  parked.token = std::move(token);
  parked.conn_id = conn_id;
  parked.worker = worker;
  parked.deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(wait_ms);
  std::lock_guard<std::mutex> lock(mu_);
  parked_.push_back(std::move(parked));
}

void FrontierService::OnTick() { PollParked(); }

std::size_t FrontierService::parked_waits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return parked_.size();
}

void FrontierService::PollParked() {
  // Complete tokens outside mu_: Complete crosses into a reactor
  // shard's mailbox, and holding our mutex across that is pointless
  // lock nesting.
  std::vector<std::pair<ReplyTokenPtr, Frame>> done;
  const auto now = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = parked_.begin();
    while (it != parked_.end()) {
      auto round = frontier_->PollWait(it->worker);
      if (round.outcome == mc::SharedFrontier::StealWait::kTimeout) {
        if (now < it->deadline) {
          ++it;  // still parked, still counting idle
          continue;
        }
        // Deadline passed: conclude the wait. CancelWait restores the
        // busy count — a kTimeout reply means "worker busy between
        // rounds", exactly like the blocking path's verdict.
        frontier_->CancelWait(it->worker);
      }
      done.emplace_back(std::move(it->token),
                        MakeStealReply(std::move(round)));
      it = parked_.erase(it);
    }
  }
  for (auto& [token, reply] : done) token->Complete(std::move(reply));
}

void FrontierService::OnDisconnect(std::uint64_t conn_id) {
  int leaked = 0;
  std::vector<ParkedWait> cancelled;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = parked_.begin();
    while (it != parked_.end()) {
      if (it->conn_id == conn_id) {
        cancelled.push_back(std::move(*it));
        it = parked_.erase(it);
      } else {
        ++it;
      }
    }
    auto bal = busy_balance_.find(conn_id);
    if (bal != busy_balance_.end()) {
      leaked = bal->second;
      busy_balance_.erase(bal);
    }
  }
  // Order matters: a parked wait already decremented the busy count, so
  // restore those *before* retiring the leaked Started balance — doing
  // it the other way around double-decrements and can falsely drain a
  // live swarm. The dropped tokens' kEIO completions no-op (the
  // connection is already gone from its shard).
  for (ParkedWait& wait : cancelled) frontier_->CancelWait(wait.worker);
  cancelled.clear();
  if (leaked > 0) {
    MCFS_LOG_WARN << "frontier: connection " << conn_id << " died with "
                  << leaked << " busy workers; retiring them so "
                  << "termination detection can conclude";
    for (int i = 0; i < leaked; ++i) frontier_->Retire();
  }
}

}  // namespace mcfs::net

// RemoteFrontier: the Frontier interface backed by a frontier server —
// remote work-stealing over the same push/steal/terminate protocol the
// in-process SharedFrontier speaks.
//
// Connection layout: one shared "main" channel for push / try-steal /
// started / retire / stop / stats, plus one *dedicated* channel per
// worker for StealWait. The split is what makes pipelining safe: a
// StealWait parks server-side (up to FrontierService::kMaxWaitMs per
// round) on its connection's thread, and FIFO reply matching means
// anything pipelined behind it would stall that long too. On its own
// channel, a parked wait stalls nobody.
//
// Blocking steal = bounded rounds: StealOrTerminate issues StealWait
// RPCs in a loop; kTimeout re-arms, kEntry/kDrained/kStopped conclude.
// Between rounds the worker counts busy server-side, which can only
// delay — never falsify — the drained verdict (same argument as
// SharedFrontier::StealOrTerminateFor's contract).
//
// Sticky stop travels both ways: RequestStop() forwards to the server
// (reaching workers on other hosts), and every reply's kFlagStopped
// updates the local cache the explorer polls via stopped().
//
// Degradation mirrors RemoteVisitedStore: on RPC failure the frontier
// flips — once, stickily — to a private SharedFrontier, replaying the
// local Started-minus-Retired balance so the fallback's termination
// protocol starts coherent, and carrying the stop flag over. Entries
// being pushed when the server died are pushed to the fallback instead
// (never dropped). The flip is logged and counted in health().
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>

#include "mc/frontier.h"
#include "net/client.h"

namespace mcfs::net {

class RemoteFrontier final : public mc::Frontier {
 public:
  // `workers` sizes the fallback frontier's hunger threshold, matching
  // what an in-process swarm of the same width would use.
  RemoteFrontier(Endpoint endpoint, int workers, RetryPolicy policy = {});

  void Push(mc::FrontierEntry entry) override;
  std::optional<mc::FrontierEntry> TrySteal(int worker) override;
  void WorkerStarted() override;
  void Retire() override;
  std::optional<mc::FrontierEntry> StealOrTerminate(
      int worker, double* idle_seconds) override;
  void RequestStop() override;
  bool stopped() const override;
  bool Hungry() const override;

  std::uint64_t size() const override;
  std::uint64_t peak_size() const override;
  std::uint64_t pushed() const override;
  std::uint64_t stolen() const override;

  mc::RemoteHealth health() const override;

  const Endpoint& endpoint() const { return endpoint_; }

 private:
  // One client-side StealWait round (server caps its share of it).
  static constexpr std::uint32_t kStealRoundMs = 1000;

  // Issues the RPC on `client`, validates the reply type, and folds the
  // reply's stop/hungry flags into the local caches. Error replies and
  // transport failures both come back as errors.
  Result<Frame> CallFrontier(RpcClient& client, FrameType type,
                             ByteView payload, bool idempotent,
                             int extra_timeout_ms = 0) const;

  // Sticky flip; returns the fallback (creating it on first call).
  mc::SharedFrontier* Degrade(Errno error);
  bool degraded() const { return degraded_.load(std::memory_order_acquire); }

  // The per-worker StealWait channel, created on first use.
  RpcClient* StealChannel(int worker);

  // Best-effort refresh of the cached size/peak/pushed/stolen stats.
  void RefreshStats() const;

  const Endpoint endpoint_;
  const RetryPolicy policy_;
  const int workers_;

  mutable RpcClient main_;
  std::mutex channels_mu_;
  std::map<int, std::unique_ptr<RpcClient>> steal_channels_;

  // Serializes Started/Retire/RequestStop bookkeeping and the degrade
  // transition, so the fallback's replayed busy count is exact. These
  // are per-worker-lifetime events, not per-op — contention is nil.
  std::mutex mu_;
  int active_ = 0;  // local Started-minus-Retired balance
  std::unique_ptr<mc::SharedFrontier> fallback_;

  std::atomic<bool> degraded_{false};
  std::atomic<std::uint64_t> degrade_events_{0};
  std::atomic<bool> stop_requested_{false};   // local RequestStop calls
  mutable std::atomic<bool> remote_stopped_{false};  // learned from flags
  // Optimistically hungry until the first reply says otherwise, so
  // early donations flow before any flag has been cached.
  mutable std::atomic<bool> remote_hungry_{true};

  mutable std::atomic<std::uint64_t> stat_size_{0};
  mutable std::atomic<std::uint64_t> stat_peak_{0};
  mutable std::atomic<std::uint64_t> stat_pushed_{0};
  mutable std::atomic<std::uint64_t> stat_stolen_{0};
};

}  // namespace mcfs::net

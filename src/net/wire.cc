#include "net/wire.h"

#include <stdexcept>

namespace mcfs::net {

namespace {

// Every decoder body runs under this: ByteReader throws out_of_range on
// truncation, which is a peer-corruption condition here, not a
// programming error — fold it to kEINVAL.
template <typename T, typename Fn>
Result<T> Guarded(Fn&& fn) {
  try {
    return fn();
  } catch (const std::out_of_range&) {
    return Errno::kEINVAL;
  }
}

// Bounds a declared element count against the bytes actually left, so a
// hostile count can't size an allocation (hash_table.cc hardening
// pattern).
bool CountFits(const ByteReader& r, std::uint64_t count,
               std::size_t elem_size) {
  return count <= r.remaining() / elem_size;
}

std::vector<bool> GetFlags(ByteReader& r) {
  const std::uint32_t n = r.GetU32();
  if (!CountFits(r, n, 1)) throw std::out_of_range("flag count");
  std::vector<bool> flags;
  flags.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) flags.push_back(r.GetU8() != 0);
  return flags;
}

void PutFlags(ByteWriter& w, const std::vector<bool>& flags) {
  w.PutU32(static_cast<std::uint32_t>(flags.size()));
  for (bool f : flags) w.PutU8(f ? 1 : 0);
}

std::vector<std::uint32_t> GetU32List(ByteReader& r) {
  const std::uint32_t n = r.GetU32();
  if (!CountFits(r, n, 4)) throw std::out_of_range("u32 count");
  std::vector<std::uint32_t> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(r.GetU32());
  return out;
}

void PutU32List(ByteWriter& w, const std::vector<std::uint32_t>& list) {
  w.PutU32(static_cast<std::uint32_t>(list.size()));
  for (std::uint32_t v : list) w.PutU32(v);
}

}  // namespace

void PutDigest(ByteWriter& w, const Md5Digest& digest) {
  w.PutBytes(ByteView(digest.bytes.data(), digest.bytes.size()));
}

Result<Md5Digest> GetDigest(ByteReader& r) {
  return Guarded<Md5Digest>([&] {
    Md5Digest digest;
    ByteView b = r.GetBytes(digest.bytes.size());
    std::copy(b.begin(), b.end(), digest.bytes.begin());
    return Result<Md5Digest>(digest);
  });
}

Bytes EncodeDigestList(std::span<const Md5Digest> digests) {
  ByteWriter w;
  w.PutU32(static_cast<std::uint32_t>(digests.size()));
  for (const Md5Digest& d : digests) PutDigest(w, d);
  return w.Take();
}

Result<std::vector<Md5Digest>> DecodeDigestList(ByteView payload) {
  return Guarded<std::vector<Md5Digest>>(
      [&]() -> Result<std::vector<Md5Digest>> {
        ByteReader r(payload);
        const std::uint32_t n = r.GetU32();
        if (!CountFits(r, n, 16)) return Errno::kEINVAL;
        std::vector<Md5Digest> digests;
        digests.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) {
          auto d = GetDigest(r);
          if (!d.ok()) return d.error();
          digests.push_back(d.value());
        }
        return digests;
      });
}

Bytes EncodeInsertResponse(const InsertBatchResponse& rsp) {
  ByteWriter w;
  w.PutU64(rsp.store_size);
  w.PutU64(rsp.store_bytes);
  w.PutU64(rsp.resize_count);
  w.PutU32(rsp.resize_events);
  w.PutU64(rsp.rehashed);
  PutFlags(w, rsp.inserted);
  return w.Take();
}

Result<InsertBatchResponse> DecodeInsertResponse(ByteView payload) {
  return Guarded<InsertBatchResponse>([&] {
    ByteReader r(payload);
    InsertBatchResponse rsp;
    rsp.store_size = r.GetU64();
    rsp.store_bytes = r.GetU64();
    rsp.resize_count = r.GetU64();
    rsp.resize_events = r.GetU32();
    rsp.rehashed = r.GetU64();
    rsp.inserted = GetFlags(r);
    return Result<InsertBatchResponse>(std::move(rsp));
  });
}

Bytes EncodeContainsResponse(const ContainsBatchResponse& rsp) {
  ByteWriter w;
  w.PutU64(rsp.store_size);
  w.PutU64(rsp.store_bytes);
  w.PutU64(rsp.resize_count);
  PutFlags(w, rsp.present);
  return w.Take();
}

Result<ContainsBatchResponse> DecodeContainsResponse(ByteView payload) {
  return Guarded<ContainsBatchResponse>([&] {
    ByteReader r(payload);
    ContainsBatchResponse rsp;
    rsp.store_size = r.GetU64();
    rsp.store_bytes = r.GetU64();
    rsp.resize_count = r.GetU64();
    rsp.present = GetFlags(r);
    return Result<ContainsBatchResponse>(std::move(rsp));
  });
}

Bytes EncodeStoreStats(const StoreStats& stats) {
  ByteWriter w;
  w.PutU64(stats.size);
  w.PutU64(stats.bytes);
  w.PutU64(stats.resize_count);
  return w.Take();
}

Result<StoreStats> DecodeStoreStats(ByteView payload) {
  return Guarded<StoreStats>([&] {
    ByteReader r(payload);
    StoreStats stats;
    stats.size = r.GetU64();
    stats.bytes = r.GetU64();
    stats.resize_count = r.GetU64();
    return Result<StoreStats>(stats);
  });
}

Bytes EncodeDumpRequest(const DumpRequest& req) {
  ByteWriter w;
  w.PutU64(req.offset);
  w.PutU32(req.max_digests);
  return w.Take();
}

Result<DumpRequest> DecodeDumpRequest(ByteView payload) {
  return Guarded<DumpRequest>([&] {
    ByteReader r(payload);
    DumpRequest req;
    req.offset = r.GetU64();
    req.max_digests = r.GetU32();
    return Result<DumpRequest>(req);
  });
}

Bytes EncodeDumpResponse(const DumpResponse& rsp) {
  ByteWriter w;
  w.PutU64(rsp.total);
  w.PutU32(static_cast<std::uint32_t>(rsp.digests.size()));
  for (const Md5Digest& d : rsp.digests) PutDigest(w, d);
  return w.Take();
}

Result<DumpResponse> DecodeDumpResponse(ByteView payload) {
  return Guarded<DumpResponse>([&]() -> Result<DumpResponse> {
    ByteReader r(payload);
    DumpResponse rsp;
    rsp.total = r.GetU64();
    const std::uint32_t n = r.GetU32();
    if (!CountFits(r, n, 16)) return Errno::kEINVAL;
    rsp.digests.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      auto d = GetDigest(r);
      if (!d.ok()) return d.error();
      rsp.digests.push_back(d.value());
    }
    return std::move(rsp);
  });
}

void PutFrontierEntry(ByteWriter& w, const mc::FrontierEntry& entry) {
  w.PutU64(entry.tag);
  PutDigest(w, entry.digest);
  PutU32List(w, entry.trail);
  PutU32List(w, entry.pending);
}

Result<mc::FrontierEntry> GetFrontierEntry(ByteReader& r) {
  return Guarded<mc::FrontierEntry>([&]() -> Result<mc::FrontierEntry> {
    mc::FrontierEntry entry;
    entry.tag = r.GetU64();
    auto d = GetDigest(r);
    if (!d.ok()) return d.error();
    entry.digest = d.value();
    entry.trail = GetU32List(r);
    entry.pending = GetU32List(r);
    return std::move(entry);
  });
}

Bytes EncodeFrontierEntry(const mc::FrontierEntry& entry) {
  ByteWriter w;
  PutFrontierEntry(w, entry);
  return w.Take();
}

Result<mc::FrontierEntry> DecodeFrontierEntry(ByteView payload) {
  ByteReader r(payload);
  return GetFrontierEntry(r);
}

Bytes EncodeStealRequest(const StealRequest& req, bool with_timeout) {
  ByteWriter w;
  w.PutU32(req.worker);
  if (with_timeout) w.PutU32(req.timeout_ms);
  return w.Take();
}

Result<StealRequest> DecodeStealRequest(ByteView payload, bool with_timeout) {
  return Guarded<StealRequest>([&] {
    ByteReader r(payload);
    StealRequest req;
    req.worker = r.GetU32();
    if (with_timeout) req.timeout_ms = r.GetU32();
    return Result<StealRequest>(req);
  });
}

Bytes EncodeStealResponse(const StealResponse& rsp) {
  ByteWriter w;
  w.PutU8(rsp.outcome);
  if (rsp.entry.has_value()) PutFrontierEntry(w, *rsp.entry);
  return w.Take();
}

Result<StealResponse> DecodeStealResponse(ByteView payload) {
  return Guarded<StealResponse>([&]() -> Result<StealResponse> {
    ByteReader r(payload);
    StealResponse rsp;
    rsp.outcome = r.GetU8();
    if (rsp.outcome == kStealEntry) {
      auto entry = GetFrontierEntry(r);
      if (!entry.ok()) return entry.error();
      rsp.entry = std::move(entry.value());
    }
    return std::move(rsp);
  });
}

Bytes EncodeFrontierStats(const FrontierStats& stats) {
  ByteWriter w;
  w.PutU64(stats.size);
  w.PutU64(stats.peak);
  w.PutU64(stats.pushed);
  w.PutU64(stats.stolen);
  return w.Take();
}

Result<FrontierStats> DecodeFrontierStats(ByteView payload) {
  return Guarded<FrontierStats>([&] {
    ByteReader r(payload);
    FrontierStats stats;
    stats.size = r.GetU64();
    stats.peak = r.GetU64();
    stats.pushed = r.GetU64();
    stats.stolen = r.GetU64();
    return Result<FrontierStats>(stats);
  });
}

Bytes EncodeError(Errno error) {
  ByteWriter w;
  w.PutU32(static_cast<std::uint32_t>(static_cast<std::int32_t>(error)));
  return w.Take();
}

Errno DecodeError(ByteView payload) {
  try {
    ByteReader r(payload);
    return static_cast<Errno>(static_cast<std::int32_t>(r.GetU32()));
  } catch (const std::out_of_range&) {
    return Errno::kEIO;
  }
}

}  // namespace mcfs::net

#include "storage/latency_disk.h"

#include <utility>

namespace mcfs::storage {

// The profiles model the paper's measurement condition: a remount-heavy,
// QD1, sync-barrier-dominated small-I/O pattern (every metadata write is
// effectively flushed). Per-I/O costs are therefore "effective sync
// latencies", not datasheet numbers — calibrated so the Figure 2 ratios
// (HDD ~20x, SSD ~18x slower than RAM) come out of our I/O pattern.
LatencyProfile LatencyProfile::Hdd() {
  LatencyProfile p;
  p.base_latency = 1'300'000;            // 1.3 ms rotation + controller
  p.max_seek = 8'000'000;                // 8 ms full stroke
  p.bandwidth_bytes_per_s = 160'000'000; // 160 MB/s sequential
  p.flush_latency = 4'000'000;           // 4 ms cache flush
  return p;
}

LatencyProfile LatencyProfile::Ssd() {
  LatencyProfile p;
  p.base_latency = 2'000'000;            // 2 ms sync write w/ barrier
  p.max_seek = 0;
  p.bandwidth_bytes_per_s = 400'000'000; // 400 MB/s
  p.flush_latency = 1'500'000;           // 1.5 ms
  return p;
}

LatencyDisk::LatencyDisk(BlockDevicePtr inner, LatencyProfile profile,
                         SimClock* clock)
    : inner_(std::move(inner)), profile_(profile), clock_(clock) {}

void LatencyDisk::Charge(std::uint64_t offset, std::uint64_t bytes) {
  if (clock_ == nullptr) return;
  SimClock::Nanos cost = profile_.base_latency;
  if (profile_.max_seek > 0 && inner_->size_bytes() > 0) {
    const std::uint64_t distance =
        offset > head_position_ ? offset - head_position_
                                : head_position_ - offset;
    cost += static_cast<SimClock::Nanos>(
        static_cast<double>(profile_.max_seek) *
        (static_cast<double>(distance) /
         static_cast<double>(inner_->size_bytes())));
  }
  if (profile_.bandwidth_bytes_per_s > 0) {
    cost += bytes * 1'000'000'000ULL / profile_.bandwidth_bytes_per_s;
  }
  clock_->Advance(cost);
  head_position_ = offset + bytes;
}

Status LatencyDisk::Read(std::uint64_t offset, std::span<std::uint8_t> out) {
  Charge(offset, out.size());
  return inner_->Read(offset, out);
}

Status LatencyDisk::Write(std::uint64_t offset, ByteView data) {
  Charge(offset, data.size());
  return inner_->Write(offset, data);
}

Status LatencyDisk::Flush() {
  if (clock_ != nullptr) clock_->Advance(profile_.flush_latency);
  return inner_->Flush();
}

Bytes LatencyDisk::SnapshotContents() const {
  if (clock_ != nullptr && profile_.bandwidth_bytes_per_s > 0) {
    clock_->Advance(profile_.base_latency +
                    inner_->size_bytes() * 1'000'000'000ULL /
                        profile_.bandwidth_bytes_per_s);
  }
  return inner_->SnapshotContents();
}

Status LatencyDisk::RestoreContents(ByteView contents) {
  // A state restore rewrites the whole device image.
  Charge(0, contents.size());
  return inner_->RestoreContents(contents);
}

}  // namespace mcfs::storage

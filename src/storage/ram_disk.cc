#include "storage/ram_disk.h"

#include <cstring>
#include <utility>

namespace mcfs::storage {

RamDisk::RamDisk(std::string name, std::uint64_t size_bytes, SimClock* clock,
                 RamDiskOptions options)
    : name_(std::move(name)),
      options_(options),
      clock_(clock),
      data_(size_bytes, 0) {}

bool RamDisk::ConsumeInjectedError() {
  if (injected_errors_ == 0) return false;
  --injected_errors_;
  return true;
}

void RamDisk::Charge(std::uint64_t bytes) {
  if (clock_ == nullptr) return;
  SimClock::Nanos cost = options_.request_latency;
  if (options_.bandwidth_bytes_per_s > 0) {
    cost += bytes * 1'000'000'000ULL / options_.bandwidth_bytes_per_s;
  }
  clock_->Advance(cost);
}

void RamDisk::ChargeSnapshotPass(std::uint64_t bytes) const {
  if (clock_ == nullptr) return;
  SimClock::Nanos cost = options_.snapshot_base_latency;
  if (options_.snapshot_bandwidth_bytes_per_s > 0) {
    cost += bytes * 1'000'000'000ULL /
            options_.snapshot_bandwidth_bytes_per_s;
  }
  clock_->Advance(cost);
}

Status RamDisk::Read(std::uint64_t offset, std::span<std::uint8_t> out) {
  if (ConsumeInjectedError()) return Errno::kEIO;
  if (offset + out.size() > data_.size()) return Errno::kEIO;
  if (!out.empty()) {
    std::memcpy(out.data(), data_.data() + offset, out.size());
  }
  ++stats_.reads;
  stats_.bytes_read += out.size();
  Charge(out.size());
  return Status::Ok();
}

Status RamDisk::Write(std::uint64_t offset, ByteView data) {
  if (ConsumeInjectedError()) return Errno::kEIO;
  if (offset + data.size() > data_.size()) return Errno::kEIO;
  if (!data.empty()) {
    std::memcpy(data_.data() + offset, data.data(), data.size());
  }
  ++stats_.writes;
  stats_.bytes_written += data.size();
  Charge(data.size());
  return Status::Ok();
}

Status RamDisk::Flush() {
  ++stats_.flushes;
  return Status::Ok();
}

Bytes RamDisk::SnapshotContents() const {
  ChargeSnapshotPass(data_.size());
  return data_;
}

Status RamDisk::RestoreContents(ByteView contents) {
  if (contents.size() != data_.size()) return Errno::kEINVAL;
  ChargeSnapshotPass(contents.size());
  data_.assign(contents.begin(), contents.end());
  return Status::Ok();
}

RamDiskFactory RamDiskFactory::Brd(std::uint64_t uniform_size,
                                   SimClock* clock) {
  return RamDiskFactory(/*uniform=*/true, uniform_size, clock);
}

RamDiskFactory RamDiskFactory::Brd2(SimClock* clock) {
  return RamDiskFactory(/*uniform=*/false, 0, clock);
}

Result<BlockDevicePtr> RamDiskFactory::Create(const std::string& name,
                                              std::uint64_t size_bytes) {
  if (uniform_ && size_bytes != uniform_size_) return Errno::kEINVAL;
  return BlockDevicePtr(std::make_shared<RamDisk>(name, size_bytes, clock_));
}

}  // namespace mcfs::storage

// MTD (Memory Technology Device) simulation for JFFS2.
//
// JFFS2 cannot mount a regular block device; it needs an MTD character
// device with erase-block semantics (erase before rewrite, whole erase
// blocks at a time). The paper loads `mtdram` to create a virtual MTD in
// RAM and `mtdblock` to expose a block interface that Spin can mmap. We
// reproduce both: MtdDevice is the flash-semantics device; MtdBlockShim
// adapts it to the BlockDevice interface (read-modify-erase-write).
#pragma once

#include <cstdint>
#include <vector>

#include "storage/block_device.h"

namespace mcfs::storage {

// Observer for raw flash mutations. JFFS2 bypasses the block shim and
// programs the MTD directly, so a crash-state recorder (CrashableDisk)
// cannot see those writes through the BlockDevice interface; it attaches
// here instead. Notifications carry the post-image of the touched range.
class MtdWriteObserver {
 public:
  virtual ~MtdWriteObserver() = default;
  virtual void OnMtdWrite(std::uint64_t offset, ByteView after) = 0;
  // A write barrier (fsync reaching the flash). Returning non-OK models
  // an injected barrier failure: nothing is committed.
  virtual Status OnMtdBarrier() = 0;
};

struct MtdOptions {
  std::uint32_t erase_block_size = 16 * 1024;
  std::uint32_t write_granularity = 4;   // NOR-style word writes
  SimClock::Nanos read_latency_per_kb = 2'000;
  SimClock::Nanos write_latency_per_kb = 50'000;    // flash program
  SimClock::Nanos erase_latency_per_block = 2'000'000;  // block erase
};

// Raw flash with erase-block discipline: bits can only be cleared by
// writes (1 -> 0); setting them back requires erasing a whole block to 0xff.
class MtdDevice {
 public:
  MtdDevice(std::string name, std::uint64_t size_bytes, SimClock* clock,
            MtdOptions options = {});

  std::uint64_t size_bytes() const { return data_.size(); }
  std::uint32_t erase_block_size() const { return options_.erase_block_size; }
  std::uint32_t erase_block_count() const {
    return static_cast<std::uint32_t>(data_.size() /
                                      options_.erase_block_size);
  }

  Status Read(std::uint64_t offset, std::span<std::uint8_t> out);

  // Programs bytes; returns EIO if the write would need to flip any 0 -> 1
  // (i.e., the region was not erased first).
  Status Program(std::uint64_t offset, ByteView data);

  // Erases the erase-block containing `offset` back to 0xff.
  Status EraseBlock(std::uint32_t block_index);

  // Write barrier. With no observer attached this is a no-op (RAM-backed
  // flash has nothing to drain); with one, the observer decides — a
  // crash-state recorder commits its in-flight journal here.
  Status Flush();

  // At most one observer; pass nullptr to detach.
  void set_write_observer(MtdWriteObserver* observer) {
    observer_ = observer;
  }

  // State capture passes read/rewrite the whole flash through the
  // mtdblock view (the paper mmaps it, §4); charged at read rate.
  Bytes SnapshotContents() const;
  Status RestoreContents(ByteView contents);

  std::uint64_t erase_count(std::uint32_t block_index) const {
    return erase_counts_.at(block_index);
  }

  std::string name() const { return name_; }

 private:
  void Charge(SimClock::Nanos ns) const {
    if (clock_ != nullptr) clock_->Advance(ns);
  }

  std::string name_;
  MtdOptions options_;
  SimClock* clock_;
  Bytes data_;
  std::vector<std::uint64_t> erase_counts_;
  MtdWriteObserver* observer_ = nullptr;
};

// mtdblock-style adapter: exposes the MTD as a BlockDevice so the model
// checker can snapshot/restore it like any block device. Writes perform
// erase-modify-program on the containing erase block.
class MtdBlockShim final : public BlockDevice {
 public:
  explicit MtdBlockShim(std::shared_ptr<MtdDevice> mtd);

  std::uint64_t size_bytes() const override { return mtd_->size_bytes(); }
  std::uint32_t block_size() const override {
    return mtd_->erase_block_size();
  }

  Status Read(std::uint64_t offset, std::span<std::uint8_t> out) override;
  Status Write(std::uint64_t offset, ByteView data) override;
  // A real barrier: forwards to the MTD so an attached crash-state
  // recorder sees fsync-driven flushes (a silent OK here would make
  // every un-flushed write look durable and crash enumeration unsound).
  Status Flush() override {
    ++stats_.flushes;
    return mtd_->Flush();
  }

  Bytes SnapshotContents() const override { return mtd_->SnapshotContents(); }
  Status RestoreContents(ByteView contents) override {
    return mtd_->RestoreContents(contents);
  }

  const DeviceStats& stats() const override { return stats_; }
  std::string name() const override { return mtd_->name() + "-block"; }

  MtdDevice& mtd() { return *mtd_; }

 private:
  std::shared_ptr<MtdDevice> mtd_;
  DeviceStats stats_;
};

}  // namespace mcfs::storage

// HDD/SSD latency decorators.
//
// Fig. 2 shows Ext2-vs-Ext4 model checking is ~20x slower on HDD and ~18x
// slower on SSD than on RAM disks. The slowdown is a pure latency effect:
// each exploration step performs dozens of small block I/Os (mount reads,
// metadata writes, snapshot copies). LatencyDisk wraps any BlockDevice and
// charges a positional latency model to the shared SimClock.
#pragma once

#include <cstdint>

#include "storage/block_device.h"

namespace mcfs::storage {

// Parameters of a simple rotating/solid-state latency model:
//   cost(op) = base + seek(distance) + bytes / bandwidth
struct LatencyProfile {
  SimClock::Nanos base_latency = 0;      // controller/queue overhead
  SimClock::Nanos max_seek = 0;          // full-stroke seek (HDD only)
  std::uint64_t bandwidth_bytes_per_s = 0;
  SimClock::Nanos flush_latency = 0;

  // ~7200rpm HDD: 4 ms average rotational+seek, ~160 MB/s sequential.
  static LatencyProfile Hdd();
  // SATA SSD: ~80 us access, ~500 MB/s.
  static LatencyProfile Ssd();
};

class LatencyDisk final : public BlockDevice {
 public:
  LatencyDisk(BlockDevicePtr inner, LatencyProfile profile, SimClock* clock);

  std::uint64_t size_bytes() const override { return inner_->size_bytes(); }
  std::uint32_t block_size() const override { return inner_->block_size(); }

  Status Read(std::uint64_t offset, std::span<std::uint8_t> out) override;
  Status Write(std::uint64_t offset, ByteView data) override;
  Status Flush() override;

  // State capture reads the whole device through the latency model (the
  // paper's Spin mmaps the backing device; saving a state touches it).
  Bytes SnapshotContents() const override;
  Status RestoreContents(ByteView contents) override;

  const DeviceStats& stats() const override { return inner_->stats(); }
  std::string name() const override { return inner_->name(); }

 private:
  void Charge(std::uint64_t offset, std::uint64_t bytes);

  BlockDevicePtr inner_;
  LatencyProfile profile_;
  SimClock* clock_;
  std::uint64_t head_position_ = 0;  // last accessed offset, for seek cost
};

}  // namespace mcfs::storage

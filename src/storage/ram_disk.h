// RAM-backed block device ("brd2").
//
// Linux's brd driver requires all RAM disks to share one size; the paper
// patched it (renaming it brd2) so different file systems could get
// different minimum sizes (256 KB for ext2/ext4, 16 MB for XFS). Our
// RamDisk takes an arbitrary size per instance, which is the behavioural
// point of that patch; RamDiskFactory mirrors the driver-level "all disks
// from one module" structure and enforces/loosens the size rule.
#pragma once

#include <cstdint>
#include <vector>

#include "storage/block_device.h"

namespace mcfs::storage {

struct RamDiskOptions {
  std::uint32_t block_size = 512;
  // Per-request block-layer overhead (bio submit + completion) plus a
  // bandwidth term. Calibrated so the paper's remount-per-op workload
  // lands at its measured ops/s (DESIGN.md §2, EXPERIMENTS.md).
  SimClock::Nanos request_latency = 25'000;           // 25 us
  std::uint64_t bandwidth_bytes_per_s = 2'000'000'000;
  // State capture/restore passes (Spin tracking the mmapped device):
  // a fixed per-state bookkeeping cost (stack push, table lookups) plus
  // a page-fault-and-hash rate well below memcpy speed.
  SimClock::Nanos snapshot_base_latency = 1'200'000;  // 1.2 ms
  std::uint64_t snapshot_bandwidth_bytes_per_s = 700'000'000;
};

class RamDisk final : public BlockDevice {
 public:
  // `clock` may be null (no time accounting, e.g. in unit tests).
  RamDisk(std::string name, std::uint64_t size_bytes, SimClock* clock,
          RamDiskOptions options = {});

  std::uint64_t size_bytes() const override { return data_.size(); }
  std::uint32_t block_size() const override { return options_.block_size; }

  Status Read(std::uint64_t offset, std::span<std::uint8_t> out) override;
  Status Write(std::uint64_t offset, ByteView data) override;
  Status Flush() override;

  Bytes SnapshotContents() const override;
  Status RestoreContents(ByteView contents) override;

  const DeviceStats& stats() const override { return stats_; }
  std::string name() const override { return name_; }

  // Injects an I/O error on the next `count` operations (failure testing).
  void InjectIoErrors(std::uint32_t count) { injected_errors_ = count; }

 private:
  bool ConsumeInjectedError();
  void Charge(std::uint64_t bytes);
  void ChargeSnapshotPass(std::uint64_t bytes) const;

  std::string name_;
  RamDiskOptions options_;
  SimClock* clock_;
  Bytes data_;
  DeviceStats stats_;
  std::uint32_t injected_errors_ = 0;
};

// Mirrors the brd/brd2 driver distinction: the stock driver hands out
// disks of one fixed size; the patched one allows per-disk sizes.
class RamDiskFactory {
 public:
  // Stock brd: every disk has `uniform_size` bytes.
  static RamDiskFactory Brd(std::uint64_t uniform_size, SimClock* clock);
  // Patched brd2: per-disk sizes allowed.
  static RamDiskFactory Brd2(SimClock* clock);

  // For brd, `size_bytes` must equal the uniform size (EINVAL otherwise).
  Result<BlockDevicePtr> Create(const std::string& name,
                                std::uint64_t size_bytes);

 private:
  RamDiskFactory(bool uniform, std::uint64_t uniform_size, SimClock* clock)
      : uniform_(uniform), uniform_size_(uniform_size), clock_(clock) {}

  bool uniform_;
  std::uint64_t uniform_size_;
  SimClock* clock_;
};

}  // namespace mcfs::storage

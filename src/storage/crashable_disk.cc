#include "storage/crashable_disk.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <utility>

#include "util/bytes.h"
#include "util/md5.h"
#include "util/rng.h"

namespace mcfs::storage {
namespace {

constexpr std::uint32_t kSnapshotMagic = 0x4352444bu;  // "CRDK"

std::uint64_t ImageDigest(const Bytes& image) {
  return Md5::Hash(ByteView(image.data(), image.size())).lo64();
}

}  // namespace

std::string CrashState::Describe() const {
  std::string out = "applied " + std::to_string(applied.size()) + "/" +
                    std::to_string(pending_total) + " in-flight writes {";
  for (std::size_t i = 0; i < applied.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(applied[i]);
  }
  out += "}";
  return out;
}

CrashableDisk::CrashableDisk(BlockDevicePtr inner)
    : inner_(std::move(inner)),
      durable_(inner_->SnapshotContents()),
      durable_digest_(ImageDigest(durable_)) {}

CrashableDisk::~CrashableDisk() {
  if (mtd_ != nullptr) mtd_->set_write_observer(nullptr);
}

void CrashableDisk::AttachMtd(std::shared_ptr<MtdDevice> mtd) {
  mtd_ = std::move(mtd);
  mtd_->set_write_observer(this);
}

Status CrashableDisk::Write(std::uint64_t offset, ByteView data) {
  Status s = inner_->Write(offset, data);
  if (!s.ok()) return s;
  // With an MTD attached the observer hook already saw the raw programs
  // this shim write decomposed into; recording here would double-count.
  if (mtd_ == nullptr) RecordWrite(offset, data);
  return Status::Ok();
}

Status CrashableDisk::Flush() {
  // MTD stack: the barrier arrives via OnMtdBarrier (the shim's Flush
  // forwards to MtdDevice::Flush, which calls the observer). Committing
  // here too would commit twice per barrier.
  if (mtd_ != nullptr) return inner_->Flush();
  if (injected_flush_errors_ > 0) {
    --injected_flush_errors_;
    return Errno::kEIO;
  }
  if (Status s = inner_->Flush(); !s.ok()) return s;
  CommitBarrier();
  return Status::Ok();
}

void CrashableDisk::OnMtdWrite(std::uint64_t offset, ByteView after) {
  RecordWrite(offset, after);
}

Status CrashableDisk::OnMtdBarrier() {
  if (injected_flush_errors_ > 0) {
    --injected_flush_errors_;
    return Errno::kEIO;
  }
  CommitBarrier();
  return Status::Ok();
}

void CrashableDisk::RecordWrite(std::uint64_t offset, ByteView after) {
  WriteRecord rec;
  rec.offset = offset;
  rec.after.assign(after.begin(), after.end());
  journal_.push_back(std::move(rec));
}

void CrashableDisk::CommitBarrier() {
  for (const WriteRecord& rec : journal_) {
    std::memcpy(durable_.data() + rec.offset, rec.after.data(),
                rec.after.size());
  }
  journal_.clear();
  ++barriers_;
  durable_digest_ = ImageDigest(durable_);
}

void CrashableDisk::MarkClean() {
  if (journal_.empty()) return;
  CommitBarrier();
}

Bytes CrashableDisk::ImageWithSubset(
    const std::vector<std::size_t>& applied) const {
  Bytes image = durable_;
  // Ascending indices = issue order, so overlapping in-flight writes
  // resolve the same way the device would (later write wins).
  for (std::size_t idx : applied) {
    const WriteRecord& rec = journal_[idx];
    std::memcpy(image.data() + rec.offset, rec.after.data(),
                rec.after.size());
  }
  return image;
}

std::vector<CrashState> CrashableDisk::EnumerateCrashStates(
    const CrashStateOptions& options) const {
  const std::size_t n = journal_.size();
  const std::size_t cap = std::max<std::size_t>(options.max_states, 2);

  std::vector<std::vector<std::size_t>> subsets;
  auto prefix = [](std::size_t k) {
    std::vector<std::size_t> s(k);
    for (std::size_t i = 0; i < k; ++i) s[i] = i;
    return s;
  };
  auto from_mask = [n](std::uint64_t mask) {
    std::vector<std::size_t> s;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::uint64_t{1} << i)) s.push_back(i);
    }
    return s;
  };

  if (options.barrier_model == BarrierModel::kOrdered) {
    if (n + 1 <= cap) {
      for (std::size_t k = 0; k <= n; ++k) subsets.push_back(prefix(k));
    } else {
      // Always the two endpoints, then a seeded spread of interior cuts.
      std::set<std::size_t> lens = {0, n};
      Rng rng(options.seed);
      while (lens.size() < cap) lens.insert(1 + rng.Below(n - 1));
      for (std::size_t k : lens) subsets.push_back(prefix(k));
    }
  } else {
    const bool exhaustive =
        n < 64 && (std::uint64_t{1} << n) <= static_cast<std::uint64_t>(cap);
    if (exhaustive) {
      for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
        subsets.push_back(from_mask(mask));
      }
    } else {
      std::set<std::uint64_t> masks;
      masks.insert(0);
      masks.insert(n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1);
      Rng rng(options.seed);
      // Attempt cap: drawing duplicates forever must not hang enumeration.
      for (std::size_t attempt = 0; attempt < cap * 8 && masks.size() < cap;
           ++attempt) {
        std::uint64_t mask = rng.Next();
        if (n < 64) mask &= (std::uint64_t{1} << n) - 1;
        masks.insert(mask);
      }
      for (std::uint64_t mask : masks) subsets.push_back(from_mask(mask));
    }
  }

  std::vector<CrashState> states;
  std::set<std::uint64_t> seen;  // dedup identical images
  for (const auto& subset : subsets) {
    CrashState state;
    state.image = ImageWithSubset(subset);
    if (!seen.insert(ImageDigest(state.image)).second) continue;
    state.applied = subset;
    state.pending_total = n;
    states.push_back(std::move(state));
  }
  return states;
}

std::uint64_t CrashableDisk::StateDigest() const {
  Md5 md5;
  md5.UpdateU64(durable_digest_);
  md5.UpdateU64(barriers_);
  md5.UpdateU64(journal_.size());
  for (const WriteRecord& rec : journal_) {
    md5.UpdateU64(rec.offset);
    md5.Update(ByteView(rec.after.data(), rec.after.size()));
  }
  return md5.Final().lo64();
}

Bytes CrashableDisk::SnapshotContents() const {
  ByteWriter w;
  w.PutU32(kSnapshotMagic);
  w.PutBlob(ByteView(durable_.data(), durable_.size()));
  w.PutU64(barriers_);
  w.PutU32(static_cast<std::uint32_t>(journal_.size()));
  for (const WriteRecord& rec : journal_) {
    w.PutU64(rec.offset);
    w.PutBlob(ByteView(rec.after.data(), rec.after.size()));
  }
  return w.Take();
}

Status CrashableDisk::RestoreContents(ByteView contents) {
  try {
    ByteReader r(contents);
    if (r.GetU32() != kSnapshotMagic) return Errno::kEINVAL;
    Bytes durable = r.GetBlob();
    const std::uint64_t barriers = r.GetU64();
    const std::uint32_t count = r.GetU32();
    std::vector<WriteRecord> journal;
    journal.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      WriteRecord rec;
      rec.offset = r.GetU64();
      rec.after = r.GetBlob();
      journal.push_back(std::move(rec));
    }
    if (!r.AtEnd()) return Errno::kEINVAL;
    durable_ = std::move(durable);
    journal_ = std::move(journal);
    barriers_ = barriers;
    durable_digest_ = ImageDigest(durable_);
    // The inner device's live contents = durable + every in-flight write.
    std::vector<std::size_t> all(journal_.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    return inner_->RestoreContents(ImageWithSubset(all));
  } catch (const std::out_of_range&) {
    return Errno::kEINVAL;
  }
}

}  // namespace mcfs::storage

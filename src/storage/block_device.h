// Block device abstraction.
//
// The paper backs kernel file systems with Linux RAM block devices (a
// patched driver, "brd2", allowing per-device sizes), and evaluates the
// same workload on HDD and SSD backends to show that model checking is
// infeasible unless the backend is RAM (Fig. 2). Devices here charge
// simulated time to a shared SimClock so that those latency effects are
// reproduced deterministically (DESIGN.md §2).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "util/bytes.h"
#include "util/result.h"
#include "util/sim_clock.h"

namespace mcfs::storage {

// Counters a device maintains for benches and tests.
struct DeviceStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t flushes = 0;
};

// A fixed-geometry block device. Offsets/lengths are in bytes but
// implementations may round internally to their block size. All calls are
// synchronous; latency is charged to the SimClock passed at construction.
class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  virtual std::uint64_t size_bytes() const = 0;
  virtual std::uint32_t block_size() const = 0;

  // Reads exactly out.size() bytes at offset. Fails with EIO past the end.
  virtual Status Read(std::uint64_t offset, std::span<std::uint8_t> out) = 0;

  // Writes exactly data.size() bytes at offset.
  virtual Status Write(std::uint64_t offset, ByteView data) = 0;

  // Persists outstanding writes (a no-op for RAM, seek-free for others).
  virtual Status Flush() = 0;

  // Snapshot of the full device contents — this is how the model checker
  // tracks persistent state for block-based file systems (the paper mmaps
  // the backing device into Spin's address space for the same purpose).
  virtual Bytes SnapshotContents() const = 0;

  // Restores a snapshot previously taken with SnapshotContents(). Note that
  // this bypasses any file-system cache above the device: that is exactly
  // the cache-incoherency hazard of paper §3.2.
  virtual Status RestoreContents(ByteView contents) = 0;

  virtual const DeviceStats& stats() const = 0;

  virtual std::string name() const = 0;
};

using BlockDevicePtr = std::shared_ptr<BlockDevice>;

}  // namespace mcfs::storage

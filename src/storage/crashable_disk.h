// CrashableDisk: a crash-state recorder decorating any BlockDevice.
//
// Between Flush() barriers the wrapper journals every write's post-image.
// A *crash state* is the durable image as of the last barrier plus some
// legal subset of the in-flight journal:
//   * kOrdered      — the device persists writes in issue order, so only
//                     journal prefixes are reachable (n+1 states).
//   * kReorderable  — the device may persist any subset (2^n states,
//                     deduplicated; sampled under a cap).
// Either way no write ever survives a barrier it preceded: the journal is
// emptied into the durable image at each successful Flush(), so only
// post-barrier writes are droppable. This is the B3 crash model (PAPERS.md)
// specialized to whole-write granularity.
//
// JFFS2 programs its MTD directly, bypassing the block shim, so for that
// stack the wrapper doubles as an MtdWriteObserver: raw Program/EraseBlock
// post-images and fsync barriers arrive via the observer hooks instead of
// Write()/Flush().
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "storage/block_device.h"
#include "storage/mtd_device.h"

namespace mcfs::storage {

enum class BarrierModel { kOrdered, kReorderable };

struct CrashStateOptions {
  BarrierModel barrier_model = BarrierModel::kReorderable;
  // Cap on generated states. When the legal space is larger, a seeded
  // sample is drawn that always includes the empty and full subsets
  // (the two states every barrier model agrees on).
  std::size_t max_states = 64;
  std::uint64_t seed = 1;
};

struct CrashState {
  Bytes image;                        // device contents at the crash
  std::vector<std::size_t> applied;   // journal indices applied, ascending
  std::size_t pending_total = 0;      // journal size at the crash point
  std::string Describe() const;
};

class CrashableDisk final : public BlockDevice, public MtdWriteObserver {
 public:
  explicit CrashableDisk(BlockDevicePtr inner);
  ~CrashableDisk() override;

  // jffs2f stack: observe raw MTD programs/erases and fsync barriers.
  // The wrapper keeps the device alive and detaches itself on destruction.
  void AttachMtd(std::shared_ptr<MtdDevice> mtd);

  // BlockDevice ------------------------------------------------------------
  std::uint64_t size_bytes() const override { return inner_->size_bytes(); }
  std::uint32_t block_size() const override { return inner_->block_size(); }
  Status Read(std::uint64_t offset, std::span<std::uint8_t> out) override {
    return inner_->Read(offset, out);
  }
  Status Write(std::uint64_t offset, ByteView data) override;
  Status Flush() override;
  // Snapshots carry the full crash bookkeeping (durable image + journal +
  // barrier count), not just the current contents, so explorer rollbacks
  // restore the recorder to the exact persistence state too.
  Bytes SnapshotContents() const override;
  Status RestoreContents(ByteView contents) override;
  const DeviceStats& stats() const override { return inner_->stats(); }
  std::string name() const override { return inner_->name() + "+crash"; }

  // MtdWriteObserver -------------------------------------------------------
  void OnMtdWrite(std::uint64_t offset, ByteView after) override;
  Status OnMtdBarrier() override;

  // Crash-state generation -------------------------------------------------
  std::vector<CrashState> EnumerateCrashStates(
      const CrashStateOptions& options) const;

  // Fault injection: the next `count` barriers fail with EIO and commit
  // nothing (the journal stays in flight).
  void InjectFlushErrors(std::uint64_t count) { injected_flush_errors_ = count; }

  // Promote everything currently in flight to durable without a device
  // barrier — used once at harness setup so mkfs/equalization writes are
  // part of the durable baseline rather than phantom in-flight writes.
  void MarkClean();

  // Digest of (durable image, journal, barrier count): two live-identical
  // states with different persistence futures must not hash-dedup.
  std::uint64_t StateDigest() const;

  std::size_t pending_writes() const { return journal_.size(); }
  std::uint64_t barriers() const { return barriers_; }
  const Bytes& durable_image() const { return durable_; }

 private:
  struct WriteRecord {
    std::uint64_t offset = 0;
    Bytes after;
  };

  void RecordWrite(std::uint64_t offset, ByteView after);
  void CommitBarrier();
  Bytes ImageWithSubset(const std::vector<std::size_t>& applied) const;

  BlockDevicePtr inner_;
  std::shared_ptr<MtdDevice> mtd_;   // set iff observing a raw MTD
  Bytes durable_;                    // image as of the last barrier
  std::vector<WriteRecord> journal_; // in-flight writes, issue order
  std::uint64_t barriers_ = 0;
  std::uint64_t injected_flush_errors_ = 0;
  std::uint64_t durable_digest_ = 0;
};

}  // namespace mcfs::storage

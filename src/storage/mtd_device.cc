#include "storage/mtd_device.h"

#include <cstring>
#include <utility>

namespace mcfs::storage {

MtdDevice::MtdDevice(std::string name, std::uint64_t size_bytes,
                     SimClock* clock, MtdOptions options)
    : name_(std::move(name)),
      options_(options),
      clock_(clock),
      data_(size_bytes, 0xff),
      erase_counts_(size_bytes / options.erase_block_size, 0) {}

Status MtdDevice::Read(std::uint64_t offset, std::span<std::uint8_t> out) {
  if (offset + out.size() > data_.size()) return Errno::kEIO;
  std::memcpy(out.data(), data_.data() + offset, out.size());
  Charge((out.size() + 1023) / 1024 * options_.read_latency_per_kb);
  return Status::Ok();
}

Status MtdDevice::Program(std::uint64_t offset, ByteView data) {
  if (offset + data.size() > data_.size()) return Errno::kEIO;
  // Flash programming can only clear bits; flipping 0 -> 1 needs an erase.
  for (std::size_t i = 0; i < data.size(); ++i) {
    if ((data[i] & ~data_[offset + i]) != 0) return Errno::kEIO;
  }
  for (std::size_t i = 0; i < data.size(); ++i) {
    data_[offset + i] &= data[i];
  }
  Charge((data.size() + 1023) / 1024 * options_.write_latency_per_kb);
  if (observer_ != nullptr) {
    observer_->OnMtdWrite(
        offset, ByteView(data_.data() + offset, data.size()));
  }
  return Status::Ok();
}

Status MtdDevice::EraseBlock(std::uint32_t block_index) {
  if (block_index >= erase_counts_.size()) return Errno::kEINVAL;
  const std::uint64_t start =
      static_cast<std::uint64_t>(block_index) * options_.erase_block_size;
  std::memset(data_.data() + start, 0xff, options_.erase_block_size);
  ++erase_counts_[block_index];
  Charge(options_.erase_latency_per_block);
  if (observer_ != nullptr) {
    observer_->OnMtdWrite(
        start, ByteView(data_.data() + start, options_.erase_block_size));
  }
  return Status::Ok();
}

Status MtdDevice::Flush() {
  if (observer_ != nullptr) return observer_->OnMtdBarrier();
  return Status::Ok();
}

Bytes MtdDevice::SnapshotContents() const {
  Charge((data_.size() + 1023) / 1024 * options_.read_latency_per_kb);
  return data_;
}

Status MtdDevice::RestoreContents(ByteView contents) {
  if (contents.size() != data_.size()) return Errno::kEINVAL;
  Charge((contents.size() + 1023) / 1024 * options_.read_latency_per_kb);
  data_.assign(contents.begin(), contents.end());
  return Status::Ok();
}

MtdBlockShim::MtdBlockShim(std::shared_ptr<MtdDevice> mtd)
    : mtd_(std::move(mtd)) {}

Status MtdBlockShim::Read(std::uint64_t offset, std::span<std::uint8_t> out) {
  Status s = mtd_->Read(offset, out);
  if (s.ok()) {
    ++stats_.reads;
    stats_.bytes_read += out.size();
  }
  return s;
}

Status MtdBlockShim::Write(std::uint64_t offset, ByteView data) {
  // Erase-modify-program each touched erase block.
  const std::uint32_t ebs = mtd_->erase_block_size();
  std::uint64_t pos = offset;
  std::size_t consumed = 0;
  while (consumed < data.size()) {
    const std::uint32_t block = static_cast<std::uint32_t>(pos / ebs);
    const std::uint64_t block_start = static_cast<std::uint64_t>(block) * ebs;
    const std::uint64_t in_block = pos - block_start;
    const std::size_t take = static_cast<std::size_t>(
        std::min<std::uint64_t>(ebs - in_block, data.size() - consumed));

    Bytes whole(ebs);
    if (Status s = mtd_->Read(block_start, whole); !s.ok()) return s;
    std::memcpy(whole.data() + in_block, data.data() + consumed, take);
    if (Status s = mtd_->EraseBlock(block); !s.ok()) return s;
    if (Status s = mtd_->Program(block_start, whole); !s.ok()) return s;

    pos += take;
    consumed += take;
  }
  ++stats_.writes;
  stats_.bytes_written += data.size();
  return Status::Ok();
}

}  // namespace mcfs::storage

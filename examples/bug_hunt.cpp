// Bug hunt: re-introduce each of the four historical VeriFS bugs the
// paper reports (§6) and let MCFS find them, printing the replayable
// trace for each. Mirrors the paper's development workflow: VeriFS1 was
// checked against Ext4, VeriFS2 against VeriFS1.
//
//   ./bug_hunt [seed]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "mcfs/harness.h"

namespace {

using namespace mcfs;
using namespace mcfs::core;

struct HuntCase {
  const char* name;
  const char* paper_note;
  FsKind reference;            // the trusted side
  verifs::VerifsBugs bugs;     // injected into the buggy side
  FsKind buggy;
};

int RunHunt(const HuntCase& hunt, std::uint64_t seed) {
  McfsConfig config;
  config.fs_a.kind = hunt.reference;
  config.fs_a.strategy =
      (hunt.reference == FsKind::kVerifs1 ||
       hunt.reference == FsKind::kVerifs2)
          ? StateStrategy::kIoctl
          : StateStrategy::kRemountPerOp;
  config.fs_b.kind = hunt.buggy;
  config.fs_b.strategy = StateStrategy::kIoctl;
  config.fs_b.bugs = hunt.bugs;
  config.engine.pool = ParameterPool::Default();
  config.explore.mode = mc::SearchMode::kDfs;
  config.explore.max_operations = 500'000;
  config.explore.max_depth = 8;
  config.explore.seed = seed;

  auto mcfs = Mcfs::Create(config);
  if (!mcfs.ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }
  std::printf("--- hunting: %s\n    (%s)\n", hunt.name, hunt.paper_note);
  McfsReport report = mcfs.value()->Run();
  if (!report.stats.violation_found) {
    std::printf("    NOT FOUND within %llu ops (unexpected)\n\n",
                static_cast<unsigned long long>(report.stats.operations));
    return 1;
  }
  std::printf("    FOUND after %llu operations\n",
              static_cast<unsigned long long>(report.stats.operations));
  std::printf("    report: %s\n", report.stats.violation_report.c_str());
  std::printf("    trail from the initial state:\n");
  for (const auto& step : report.stats.violation_trail) {
    std::printf("      %s\n", step.c_str());
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  verifs::VerifsBugs bug1;
  bug1.truncate_no_zero_on_expand = true;
  verifs::VerifsBugs bug2;
  bug2.skip_cache_invalidation_on_restore = true;
  verifs::VerifsBugs bug3;
  bug3.write_hole_no_zero = true;
  verifs::VerifsBugs bug4;
  bug4.size_update_only_on_capacity_growth = true;

  const HuntCase hunts[] = {
      {"VeriFS1 bug #1: truncate does not zero on expansion",
       "paper: found vs Ext4 after ~9K operations", FsKind::kExt4, bug1,
       FsKind::kVerifs1},
      {"VeriFS1 bug #2: restore skips kernel cache invalidation",
       "paper: found vs Ext4 after ~12K operations", FsKind::kExt4, bug2,
       FsKind::kVerifs1},
      {"VeriFS2 bug #3: write creating a hole does not zero the gap",
       "paper: found vs VeriFS1 after ~900K operations", FsKind::kVerifs1,
       bug3, FsKind::kVerifs2},
      {"VeriFS2 bug #4: size updated only when the buffer grew",
       "paper: found vs VeriFS1 after ~1.2M operations", FsKind::kVerifs1,
       bug4, FsKind::kVerifs2},
  };

  int failures = 0;
  for (const HuntCase& hunt : hunts) {
    failures += RunHunt(hunt, seed);
  }
  if (failures == 0) {
    std::printf("all four historical bugs were rediscovered.\n");
  }
  return failures;
}

// Mutation self-verification campaign: does the checker actually catch
// the bugs it claims to catch?
//
// Every corpus mutant (see src/verifs/mutations.cc) is explored on two
// axes: the relative axis pairs it against a pristine twin of its own
// file system (dual mutants pair the two buggy families against each
// other), and the spec axis pairs it against the executable POSIX spec.
// Each detection is shrunk to a 1-minimal replay-confirmed reproducer,
// and the campaign reports both kill rates plus a machine-readable JSON
// artifact with per-axis columns (`killed_by: "spec"` marks bugs only
// the absolute oracle could see). Exits nonzero if any mutant expected
// to be detected survived either axis.
//
//   ./mutation_campaign [--list] [--mutant=NAME]... [--crash-only]
//                       [--out=FILE] [--ops=N] [--depth=N] [--seeds=N]
//                       [--max-replays=N] [--no-minimize] [--no-fuse]
//                       [--no-spec]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "mcfs/harness.h"

using namespace mcfs;
using namespace mcfs::core;

int main(int argc, char** argv) {
  MutationCampaignOptions options;
  std::string out_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg == "--list") {
      for (const verifs::Mutant& m : verifs::MutationCorpus()) {
        std::printf("%-36s %s%s%s%s(%s)\n", m.name.c_str(),
                    m.historical ? "[historical] " : "",
                    m.crash ? "[crash] " : "",
                    m.dual ? "[dual: spec-axis only] " : "",
                    m.expect_detected ? "" : "[expected to survive] ",
                    m.hint.c_str());
      }
      return 0;
    } else if (arg.rfind("--mutant=", 0) == 0) {
      options.only.push_back(value("--mutant="));
    } else if (arg == "--crash-only") {
      // The crash axis alone (scripts/crash_campaign.sh): every corpus
      // mutant explored under the crash mode.
      for (const verifs::Mutant& m : verifs::MutationCorpus()) {
        if (m.crash) options.only.push_back(m.name);
      }
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = value("--out=");
    } else if (arg.rfind("--ops=", 0) == 0) {
      options.max_operations = std::strtoull(value("--ops=").c_str(),
                                             nullptr, 10);
    } else if (arg.rfind("--depth=", 0) == 0) {
      options.max_depth = static_cast<std::uint32_t>(
          std::strtoul(value("--depth=").c_str(), nullptr, 10));
    } else if (arg.rfind("--seeds=", 0) == 0) {
      const std::uint64_t n =
          std::strtoull(value("--seeds=").c_str(), nullptr, 10);
      options.seeds.clear();
      for (std::uint64_t s = 1; s <= n; ++s) options.seeds.push_back(s);
    } else if (arg.rfind("--max-replays=", 0) == 0) {
      options.max_replays = std::strtoull(value("--max-replays=").c_str(),
                                          nullptr, 10);
    } else if (arg == "--no-minimize") {
      options.minimize = false;
    } else if (arg == "--no-fuse") {
      options.fuse_transport = false;
    } else if (arg == "--no-spec") {
      options.spec_axis = false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  MutationCampaignReport report = RunMutationCampaign(options);
  std::printf("%s", report.Summary().c_str());

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 2;
    }
    out << report.ToJson();
    std::printf("JSON report written to %s\n", out_path.c_str());
  }

  return report.missed.empty() && report.spec_missed.empty() ? 0 : 1;
}

// Cross-file-system check: ext4f vs xfsf with the remount-per-operation
// strategy, demonstrating the §3.4 false-positive workarounds (this pair
// has genuinely different directory-size reporting and getdents order). Run once
// with all workarounds on (clean), then once with each disabled to show
// what it suppresses.
//
//   ./cross_fs_check [max_operations]
#include <cstdio>
#include <cstdlib>

#include "mcfs/harness.h"

namespace {

using namespace mcfs;
using namespace mcfs::core;

McfsConfig BaseConfig(std::uint64_t max_ops) {
  McfsConfig config;
  config.fs_a.kind = FsKind::kExt4;
  config.fs_b.kind = FsKind::kXfs;
  config.engine.pool = ParameterPool::Default();
  config.explore.max_operations = max_ops;
  config.explore.max_depth = 6;
  config.explore.seed = 17;
  return config;
}

void Report(const char* label, const McfsReport& report) {
  std::printf("%-42s ops=%-6llu discrepancies=%llu%s\n", label,
              static_cast<unsigned long long>(report.stats.operations),
              static_cast<unsigned long long>(
                  report.counters.discrepancies),
              report.stats.violation_found ? "  [halted on violation]"
                                           : "");
  if (report.stats.violation_found) {
    std::printf("    first: %s\n", report.stats.violation_report.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t max_ops =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;

  std::printf("ext4f vs xfsf, remount-per-operation strategy\n\n");

  {
    auto mcfs = Mcfs::Create(BaseConfig(max_ops));
    if (!mcfs.ok()) return 1;
    Report("all workarounds on (expected clean):", mcfs.value()->Run());
  }
  {
    McfsConfig config = BaseConfig(max_ops);
    config.engine.checker.ignore_directory_sizes = false;
    auto mcfs = Mcfs::Create(config);
    if (!mcfs.ok()) return 1;
    Report("directory sizes compared (false positive):",
           mcfs.value()->Run());
  }
  {
    McfsConfig config = BaseConfig(max_ops);
    config.engine.checker.sort_dirents = false;
    auto mcfs = Mcfs::Create(config);
    if (!mcfs.ok()) return 1;
    Report("getdents unsorted (false positive):", mcfs.value()->Run());
  }
  {
    // Drop the special-folder exception list: ext4f's lost+found shows
    // through. The engine adds /lost+found automatically, so override the
    // abstraction+checker lists after construction isn't possible from
    // here; instead compare ext4f against itself minus the filter via a
    // custom config knob: simplest honest demonstration is getdents("/")
    // on both sides, which the checker-only disable shows.
    McfsConfig config = BaseConfig(max_ops);
    config.engine.checker.special_names.clear();  // keep auto-added ones
    auto mcfs = Mcfs::Create(config);
    if (!mcfs.ok()) return 1;
    Report("exception list active (control, clean):", mcfs.value()->Run());
  }
  std::printf(
      "\nWorkarounds suppress unstandardized differences; disabling one\n"
      "turns it straight into a spurious 'bug' report (paper §3.4).\n");
  return 0;
}

// Distributed-swarm state server (DESIGN.md §7.3).
//
// Hosts the shared visited store — and optionally the work-stealing
// frontier — for swarm workers running in other processes or on other
// hosts. Workers connect with --visited-server/--frontier-server (see
// swarm_explore) and speak the length-prefixed frame protocol; the
// digests land in one process-wide ShardedVisitedTable, so discovery
// credit is arbitrated across every connected worker.
//
//   ./visited_server [--listen host:port|unix:/path] [--frontier]
//                    [--workers N] [--shards N] [--thread-per-conn]
//
// The default serving model is the epoll reactor (DESIGN.md §7.9): one
// event-loop thread — or N with --shards — owns every connection, and
// frontier steal-waits park on a timer instead of a thread.
// --thread-per-conn restores the legacy one-thread-per-connection
// model (the connection-scaling baseline in bench_swarm Part 3).
//
// Prints the bound endpoint (useful with port 0) and serves until
// SIGINT/SIGTERM.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <chrono>
#include <thread>

#include "mc/frontier.h"
#include "mc/sharded_table.h"
#include "net/frontier_service.h"
#include "net/server.h"
#include "net/visited_service.h"

namespace {
volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  using namespace mcfs;

  const char* listen = "127.0.0.1:9090";
  bool serve_frontier = false;
  int workers = 16;
  net::ServerOptions server_options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--listen") == 0 && i + 1 < argc) {
      listen = argv[++i];
    } else if (std::strcmp(argv[i], "--frontier") == 0) {
      serve_frontier = true;
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      server_options.reactor_shards = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--thread-per-conn") == 0) {
      server_options.model = net::ServerOptions::Model::kThreadPerConn;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--listen host:port|unix:/path] [--frontier] "
                   "[--workers N] [--shards N] [--thread-per-conn]\n",
                   argv[0]);
      return 2;
    }
  }

  auto endpoint = net::ParseEndpoint(listen);
  if (!endpoint.ok()) {
    std::fprintf(stderr, "bad --listen endpoint '%s'\n", listen);
    return 2;
  }

  mc::ShardedVisitedTable table;
  net::VisitedService visited(&table);
  // The frontier needs an upper bound on concurrently-busy workers for
  // termination detection; remote worker slots are cheap, so size it
  // generously via --workers.
  mc::SharedFrontier frontier(workers > 0 ? workers : 16);
  net::FrontierService frontier_service(&frontier);

  std::vector<net::FrameService*> services{&visited};
  if (serve_frontier) services.push_back(&frontier_service);
  net::FrameServer server(services, server_options);
  auto started = server.Start(endpoint.value());
  if (!started.ok()) {
    std::fprintf(stderr, "failed to bind %s: %s\n",
                 endpoint.value().ToString().c_str(),
                 std::string(ErrnoName(started.error())).c_str());
    return 1;
  }

  std::printf("visited server listening on %s%s (%s, %d thread%s)\n",
              server.endpoint().ToString().c_str(),
              serve_frontier ? " (frontier enabled)" : "",
              server.options().model == net::ServerOptions::Model::kReactor
                  ? "reactor"
                  : "thread-per-conn",
              server.serving_threads(),
              server.serving_threads() == 1 ? "" : "s");
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }

  server.Stop();
  std::printf("shutting down: %llu states stored, %llu connections served\n",
              static_cast<unsigned long long>(table.size()),
              static_cast<unsigned long long>(server.connections_accepted()));
  return 0;
}

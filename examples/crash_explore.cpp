// Crash-consistency exploration quickstart (DESIGN.md §7.7): explore a
// pair of kernel file systems on crashable devices, and after every
// operation enumerate the legal crash states of the device, remount
// each on a fresh recovery probe (jffs2f log replay / ext4f journal
// recovery), and validate the recovered tree against the persistence
// oracle — durable-at-sync survives exactly, un-synced effects are
// atomically absent, never torn.
//
//   ./crash_explore [--a=ext2|ext4|jffs2] [--b=ext2|ext4|jffs2]
//                   [--ops=N] [--depth=N] [--seed=N]
//                   [--ordered] [--max-states=N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "mcfs/harness.h"

using namespace mcfs;
using namespace mcfs::core;

namespace {

bool ParseKind(const std::string& name, FsKind* kind) {
  if (name == "ext2") return *kind = FsKind::kExt2, true;
  if (name == "ext4") return *kind = FsKind::kExt4, true;
  if (name == "jffs2") return *kind = FsKind::kJffs2, true;
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  FsKind kind_a = FsKind::kExt2;
  FsKind kind_b = FsKind::kJffs2;
  std::uint64_t ops = 4'000;
  std::uint32_t depth = 3;
  std::uint64_t seed = 1;
  storage::CrashStateOptions states;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--a=", 0) == 0 && ParseKind(value("--a="), &kind_a)) {
    } else if (arg.rfind("--b=", 0) == 0 && ParseKind(value("--b="), &kind_b)) {
    } else if (arg.rfind("--ops=", 0) == 0) {
      ops = std::strtoull(value("--ops=").c_str(), nullptr, 10);
    } else if (arg.rfind("--depth=", 0) == 0) {
      depth = static_cast<std::uint32_t>(
          std::strtoul(value("--depth=").c_str(), nullptr, 10));
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(value("--seed=").c_str(), nullptr, 10);
    } else if (arg == "--ordered") {
      states.barrier_model = storage::BarrierModel::kOrdered;
    } else if (arg.rfind("--max-states=", 0) == 0) {
      states.max_states = std::strtoull(value("--max-states=").c_str(),
                                        nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  McfsConfig config;
  config.fs_a.kind = kind_a;
  config.fs_a.strategy = StateStrategy::kVfsApi;
  config.fs_a.fuse_transport = false;
  // Uncached: only fsync writes reach the device, so barriers bound the
  // in-flight journal and each op yields a handful of crash states.
  config.fs_a.block_cache_capacity = 0;
  config.fs_b = config.fs_a;
  config.fs_b.kind = kind_b;
  config.engine.pool = ParameterPool::Tiny();
  config.engine.pool.include_fsync_ops = true;
  config.engine.abstraction.incremental = false;
  config.engine.crash.enabled = true;
  config.engine.crash.states = states;
  config.explore.mode = mc::SearchMode::kDfs;
  config.explore.crash_mode = mc::CrashMode::kEveryOp;
  config.explore.por = false;
  config.explore.max_operations = ops;
  config.explore.max_depth = depth;
  config.explore.seed = seed;

  auto mcfs = Mcfs::Create(config);
  if (!mcfs.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 std::string(ErrnoName(mcfs.error())).c_str());
    return 2;
  }

  McfsReport report = mcfs.value()->Run();
  std::printf("%s\n", report.Summary().c_str());
  std::printf("crash checks: %llu ops, %llu crash states remounted\n",
              static_cast<unsigned long long>(report.counters.crash_checks),
              static_cast<unsigned long long>(
                  report.counters.crash_states_checked));
  if (report.stats.violation_found) {
    std::printf("VIOLATION: %s\n", report.stats.violation_report.c_str());
    for (const auto& step : report.stats.violation_trail) {
      std::printf("  %s\n", step.c_str());
    }
    return 1;
  }
  std::printf("every enumerated crash state recovered legally.\n");
  return 0;
}

// fs_shell: a tiny stdin-driven shell over any of the six file systems,
// for poking the substrates directly.
//
//   ./fs_shell [ext2|ext4|xfs|jffs2|verifs1|verifs2]
//
// Commands:
//   ls <dir> | write <path> <text> | cat <path> | mkdir <p> | rmdir <p>
//   rm <p> | mv <a> <b> | ln <a> <b> | stat <p> | truncate <p> <n>
//   checkpoint <key> | restore <key> | statfs | remount | quit
#include <cstdio>
#include <iostream>
#include <sstream>

#include "fs/checkpointable.h"
#include "fs/ext2/ext2fs.h"
#include "fs/ext4/ext4fs.h"
#include "fs/jffs2/jffs2fs.h"
#include "fs/xfs/xfsfs.h"
#include "storage/ram_disk.h"
#include "verifs/verifs1.h"
#include "verifs/verifs2.h"

namespace {

using namespace mcfs;
using namespace mcfs::fs;

struct Instance {
  FileSystemPtr filesystem;
  std::vector<std::shared_ptr<void>> keepalive;
};

Instance MakeFs(const std::string& kind) {
  Instance instance;
  if (kind == "ext2") {
    auto dev = std::make_shared<storage::RamDisk>("d", 256 * 1024, nullptr);
    instance.filesystem = std::make_shared<Ext2Fs>(dev);
    instance.keepalive.push_back(dev);
  } else if (kind == "ext4") {
    auto dev = std::make_shared<storage::RamDisk>("d", 256 * 1024, nullptr);
    instance.filesystem = std::make_shared<Ext4Fs>(dev);
    instance.keepalive.push_back(dev);
  } else if (kind == "xfs") {
    auto dev =
        std::make_shared<storage::RamDisk>("d", 16 * 1024 * 1024, nullptr);
    instance.filesystem = std::make_shared<XfsFs>(dev);
    instance.keepalive.push_back(dev);
  } else if (kind == "jffs2") {
    auto mtd =
        std::make_shared<storage::MtdDevice>("mtd", 1024 * 1024, nullptr);
    instance.filesystem = std::make_shared<Jffs2Fs>(mtd);
    instance.keepalive.push_back(mtd);
  } else if (kind == "verifs1") {
    instance.filesystem = std::make_shared<verifs::Verifs1>();
  } else {
    instance.filesystem = std::make_shared<verifs::Verifs2>();
  }
  return instance;
}

void PrintStatus(Status status) {
  std::printf("%s\n", status.ok()
                          ? "ok"
                          : std::string(ErrnoName(status.error())).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string kind = argc > 1 ? argv[1] : "verifs2";
  Instance instance = MakeFs(kind);
  FileSystem& fs = *instance.filesystem;
  auto* checkpointable = dynamic_cast<CheckpointableFs*>(&fs);

  if (!fs.Mkfs().ok() || !fs.Mount().ok()) {
    std::fprintf(stderr, "failed to format/mount %s\n", kind.c_str());
    return 1;
  }
  std::printf("%s mounted. type 'help' for commands.\n",
              fs.TypeName().c_str());

  std::string line;
  while (std::printf("%s> ", fs.TypeName().c_str()),
         std::fflush(stdout), std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd, a, b;
    in >> cmd >> a;
    std::getline(in, b);
    if (!b.empty() && b.front() == ' ') b.erase(0, 1);

    if (cmd.empty()) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      std::printf(
          "ls write cat mkdir rmdir rm mv ln stat truncate checkpoint "
          "restore statfs remount quit\n");
    } else if (cmd == "ls") {
      auto entries = fs.ReadDir(a.empty() ? "/" : a);
      if (!entries.ok()) {
        std::printf("%s\n", std::string(ErrnoName(entries.error())).c_str());
        continue;
      }
      for (const auto& e : entries.value()) {
        std::printf("%-10s %s\n", std::string(FileTypeName(e.type)).c_str(),
                    e.name.c_str());
      }
    } else if (cmd == "write") {
      auto fd = fs.Open(a, kCreate | kWrOnly | kTrunc, 0644);
      if (!fd.ok()) {
        std::printf("%s\n", std::string(ErrnoName(fd.error())).c_str());
        continue;
      }
      auto n = fs.Write(fd.value(), 0, AsBytes(b));
      (void)fs.Close(fd.value());
      if (n.ok()) {
        std::printf("wrote %llu bytes\n",
                    static_cast<unsigned long long>(n.value()));
      } else {
        std::printf("%s\n", std::string(ErrnoName(n.error())).c_str());
      }
    } else if (cmd == "cat") {
      auto fd = fs.Open(a, kRdOnly, 0);
      if (!fd.ok()) {
        std::printf("%s\n", std::string(ErrnoName(fd.error())).c_str());
        continue;
      }
      auto data = fs.Read(fd.value(), 0, 1 << 20);
      (void)fs.Close(fd.value());
      if (data.ok()) {
        std::printf("%.*s\n", static_cast<int>(data.value().size()),
                    reinterpret_cast<const char*>(data.value().data()));
      } else {
        std::printf("%s\n", std::string(ErrnoName(data.error())).c_str());
      }
    } else if (cmd == "mkdir") {
      PrintStatus(fs.Mkdir(a, 0755));
    } else if (cmd == "rmdir") {
      PrintStatus(fs.Rmdir(a));
    } else if (cmd == "rm") {
      PrintStatus(fs.Unlink(a));
    } else if (cmd == "mv") {
      PrintStatus(fs.Rename(a, b));
    } else if (cmd == "ln") {
      PrintStatus(fs.Link(a, b));
    } else if (cmd == "truncate") {
      PrintStatus(fs.Truncate(a, std::strtoull(b.c_str(), nullptr, 10)));
    } else if (cmd == "stat") {
      auto attr = fs.GetAttr(a);
      if (!attr.ok()) {
        std::printf("%s\n", std::string(ErrnoName(attr.error())).c_str());
        continue;
      }
      const auto& at = attr.value();
      std::printf("ino=%llu type=%s mode=%o nlink=%u uid=%u gid=%u "
                  "size=%llu blocks=%llu\n",
                  static_cast<unsigned long long>(at.ino),
                  std::string(FileTypeName(at.type)).c_str(), at.mode,
                  at.nlink, at.uid, at.gid,
                  static_cast<unsigned long long>(at.size),
                  static_cast<unsigned long long>(at.blocks));
    } else if (cmd == "checkpoint") {
      if (checkpointable == nullptr) {
        std::printf("ENOTSUP (the paper's point: only VeriFS has this)\n");
      } else {
        PrintStatus(checkpointable->IoctlCheckpoint(
            std::strtoull(a.c_str(), nullptr, 10)));
      }
    } else if (cmd == "restore") {
      if (checkpointable == nullptr) {
        std::printf("ENOTSUP\n");
      } else {
        PrintStatus(checkpointable->IoctlRestore(
            std::strtoull(a.c_str(), nullptr, 10)));
      }
    } else if (cmd == "statfs") {
      auto sv = fs.StatFs();
      if (sv.ok()) {
        std::printf("total=%llu free=%llu inodes=%llu/%llu\n",
                    static_cast<unsigned long long>(sv.value().total_bytes),
                    static_cast<unsigned long long>(sv.value().free_bytes),
                    static_cast<unsigned long long>(sv.value().free_inodes),
                    static_cast<unsigned long long>(
                        sv.value().total_inodes));
      } else {
        std::printf("%s\n", std::string(ErrnoName(sv.error())).c_str());
      }
    } else if (cmd == "remount") {
      Status u = fs.Unmount();
      if (!u.ok()) {
        PrintStatus(u);
        continue;
      }
      PrintStatus(fs.Mount());
    } else {
      std::printf("unknown command '%s'\n", cmd.c_str());
    }
  }
  if (fs.IsMounted()) (void)fs.Unmount();
  return 0;
}

// N-way majority voting (paper §7 future work): run three file systems
// concurrently; when one misbehaves, the vote names the culprit rather
// than just reporting "two file systems disagree".
//
//   ./nway_vote [seed]
#include <cstdio>
#include <cstdlib>

#include "mc/explorer.h"
#include "mcfs/nway_engine.h"

int main(int argc, char** argv) {
  using namespace mcfs;
  using namespace mcfs::core;

  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;

  // Panel: clean VeriFS2, a buggy VeriFS2 (historical bug #4 seeded),
  // and clean VeriFS1 — majority = the two clean implementations.
  std::vector<std::unique_ptr<FsUnderTest>> owned;
  std::vector<FsUnderTest*> panel;
  for (int i = 0; i < 3; ++i) {
    FsUnderTestConfig config;
    config.kind = i == 2 ? FsKind::kVerifs1 : FsKind::kVerifs2;
    config.strategy = StateStrategy::kIoctl;
    if (i == 1) config.bugs.size_update_only_on_capacity_growth = true;
    auto fut = FsUnderTest::Create(config, nullptr);
    if (!fut.ok()) {
      std::fprintf(stderr, "setup failed\n");
      return 1;
    }
    owned.push_back(std::move(fut).value());
    panel.push_back(owned.back().get());
  }

  std::printf("panel: %s (clean), %s (bug #4 seeded), %s (clean)\n",
              panel[0]->name().c_str(), panel[1]->name().c_str(),
              panel[2]->name().c_str());

  NWayOptions options;
  options.pool = ParameterPool::Default();
  NWaySyscallEngine engine(panel, options);

  mc::ExplorerOptions eopts;
  eopts.max_operations = 200'000;
  eopts.max_depth = 8;
  eopts.seed = seed;
  mc::Explorer explorer(engine, eopts);
  mc::ExploreStats stats = explorer.Run();

  std::printf("\nexplored %llu operations, %llu unique states\n",
              static_cast<unsigned long long>(stats.operations),
              static_cast<unsigned long long>(stats.unique_states));
  if (!stats.violation_found) {
    std::printf("no deviation found (unexpected with a seeded bug)\n");
    return 1;
  }
  std::printf("\nVERDICT: %s\n", stats.violation_report.c_str());
  std::printf("\nsuspicion tally (times outvoted):\n");
  for (std::size_t i = 0; i < engine.fs_count(); ++i) {
    std::printf("  #%zu %-10s %llu\n", i, engine.fs_name(i).c_str(),
                static_cast<unsigned long long>(
                    engine.suspicion_counts()[i]));
  }
  std::printf("\ntrail:\n");
  for (const auto& step : stats.violation_trail) {
    std::printf("  %s\n", step.c_str());
  }
  return 0;
}

// N-way majority voting (paper §7 future work): run three file systems
// concurrently; when one misbehaves, the vote names the culprit rather
// than just reporting "two file systems disagree".
//
// With --with-spec the executable POSIX specification joins the panel as
// a fourth member and the vote becomes absolute: the spec's group is the
// reference regardless of its size, suspicion never accrues against the
// spec, and an outvoted spec is reported as "spec says majority is
// wrong" instead of the oracle being blamed.
//
//   ./nway_vote [seed] [--with-spec]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "mc/explorer.h"
#include "mcfs/harness.h"
#include "mcfs/nway_engine.h"

int main(int argc, char** argv) {
  using namespace mcfs;
  using namespace mcfs::core;

  std::uint64_t seed = 3;
  bool with_spec = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--with-spec") == 0) {
      with_spec = true;
    } else {
      seed = std::strtoull(argv[i], nullptr, 10);
    }
  }

  // Panel: clean VeriFS2, a buggy VeriFS2 (historical bug #4 seeded),
  // and clean VeriFS1 — majority = the two clean implementations. With
  // --with-spec the executable spec joins as the absolute oracle.
  std::vector<std::unique_ptr<FsUnderTest>> owned;
  std::vector<FsUnderTest*> panel;
  const int members = with_spec ? 4 : 3;
  for (int i = 0; i < members; ++i) {
    FsUnderTestConfig config;
    config.kind = i == 2   ? FsKind::kVerifs1
                  : i == 3 ? FsKind::kSpec
                           : FsKind::kVerifs2;
    config.strategy = StateStrategy::kIoctl;
    if (i == 3) config.fuse_transport = false;
    if (i == 1) config.bugs.size_update_only_on_capacity_growth = true;
    auto fut = FsUnderTest::Create(config, nullptr);
    if (!fut.ok()) {
      std::fprintf(stderr, "setup failed\n");
      return 1;
    }
    owned.push_back(std::move(fut).value());
    panel.push_back(owned.back().get());
  }

  std::printf("panel: %s (clean), %s (bug #4 seeded), %s (clean)%s\n",
              panel[0]->name().c_str(), panel[1]->name().c_str(),
              panel[2]->name().c_str(),
              with_spec ? ", specfs (oracle)" : "");

  NWayOptions options;
  options.pool = ParameterPool::Default();
  if (with_spec) options.oracle_index = 3;
  NWaySyscallEngine engine(panel, options);

  mc::ExplorerOptions eopts;
  eopts.max_operations = 200'000;
  eopts.max_depth = 8;
  eopts.seed = seed;
  mc::Explorer explorer(engine, eopts);
  mc::ExploreStats stats = explorer.Run();

  std::printf("\nexplored %llu operations, %llu unique states\n",
              static_cast<unsigned long long>(stats.operations),
              static_cast<unsigned long long>(stats.unique_states));
  if (!stats.violation_found) {
    std::printf("no deviation found (unexpected with a seeded bug)\n");
    return 1;
  }
  std::printf("\nVERDICT: %s\n", stats.violation_report.c_str());
  std::printf("\nsuspicion tally (times outvoted):\n");
  for (std::size_t i = 0; i < engine.fs_count(); ++i) {
    std::printf("  #%zu %-10s %llu\n", i, engine.fs_name(i).c_str(),
                static_cast<unsigned long long>(
                    engine.suspicion_counts()[i]));
  }
  if (with_spec) {
    std::printf("\noracle disagreements (times each member contradicted "
                "the spec):\n");
    for (std::size_t i = 0; i < engine.fs_count(); ++i) {
      std::printf("  #%zu %-10s %llu\n", i, engine.fs_name(i).c_str(),
                  static_cast<unsigned long long>(
                      engine.oracle_disagreement_counts()[i]));
    }
    McfsReport report;
    report.stats = stats;
    AttachOracleTally(engine, &report);
    std::printf("\nsummary: %s\n", report.Summary().c_str());
  }
  std::printf("\ntrail:\n");
  for (const auto& step : stats.violation_trail) {
    std::printf("  %s\n", step.c_str());
  }
  return 0;
}

// Quickstart: model-check VeriFS1 against VeriFS2.
//
// This is the paper's flagship configuration (§5-§6): both file systems
// implement the proposed ioctl_CHECKPOINT / ioctl_RESTORE APIs, so the
// checker backtracks without any unmount/remount cycles. A few thousand
// operations explore the bounded state space exhaustively and should
// find no discrepancies.
//
//   ./quickstart [max_operations] [seed]
#include <cstdio>
#include <cstdlib>

#include "mcfs/harness.h"

int main(int argc, char** argv) {
  using namespace mcfs;
  using namespace mcfs::core;

  const std::uint64_t max_ops =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5000;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  McfsConfig config;
  config.fs_a.kind = FsKind::kVerifs1;
  config.fs_a.strategy = StateStrategy::kIoctl;
  config.fs_b.kind = FsKind::kVerifs2;
  config.fs_b.strategy = StateStrategy::kIoctl;
  config.engine.pool = ParameterPool::Default();
  config.explore.mode = mc::SearchMode::kDfs;
  config.explore.max_operations = max_ops;
  config.explore.max_depth = 8;
  config.explore.seed = seed;

  auto mcfs = Mcfs::Create(config);
  if (!mcfs.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 std::string(ErrnoName(mcfs.error())).c_str());
    return 1;
  }

  std::printf("model checking %s vs %s (%zu actions in the pool)...\n",
              mcfs.value()->fs_a().name().c_str(),
              mcfs.value()->fs_b().name().c_str(),
              mcfs.value()->engine().ActionCount());

  McfsReport report = mcfs.value()->Run();

  std::printf("\n%s\n", report.Summary().c_str());
  std::printf("\nexploration detail:\n");
  std::printf("  operations          %llu\n",
              static_cast<unsigned long long>(report.stats.operations));
  std::printf("  unique states       %llu\n",
              static_cast<unsigned long long>(report.stats.unique_states));
  std::printf("  revisits pruned     %llu\n",
              static_cast<unsigned long long>(report.stats.revisits));
  std::printf("  backtracks          %llu\n",
              static_cast<unsigned long long>(report.stats.backtracks));
  if (report.stats.por_active) {
    std::printf("  POR pruned          %llu transitions (%llu awakened)\n",
                static_cast<unsigned long long>(
                    report.stats.por_pruned_transitions),
                static_cast<unsigned long long>(
                    report.stats.por_sleep_awakened));
  }
  std::printf("  simulated ops/s     %.0f\n", report.sim_ops_per_sec);
  std::printf("  wall-clock ops/s    %.0f\n", report.wall_ops_per_sec);

  if (report.stats.violation_found) {
    std::printf("\nA discrepancy was found (unexpected on a clean pair):\n%s\n",
                report.stats.violation_report.c_str());
    return 2;
  }
  std::printf("\nno discrepancies: the two file systems agreed on every "
              "operation and state.\n");
  return 0;
}

// Swarm verification over VeriFS1-vs-VeriFS2 (paper §2/§7).
//
// Independent mode: several seed-diversified explorers run in parallel
// with share-nothing visited sets that are merged afterwards (Spin
// swarm's design). Cooperative mode: the workers share one lock-striped
// visited store, so a state explored by any worker is pruned by all the
// others, and the first violation cancels the whole swarm. Stealing
// mode: cooperative plus a shared work-stealing frontier — DFS workers
// donate unexplored branches, a starved worker steals one, replays its
// action trail on its own file systems (digest-verified), and resumes
// searching there (DESIGN.md §7.2).
//
// Distributed mode: point --visited-server (and optionally
// --frontier-server) at a running ./visited_server and this process
// becomes one shard of a cross-process swarm — the shared store and the
// stolen work both travel over the socket (DESIGN.md §7.3). If the
// server dies mid-run the workers degrade to process-local structures
// and finish anyway; the degradation counters below report it.
//
//   ./swarm_explore [workers] [ops_per_worker]
//                   [independent|cooperative|stealing]
//                   [--visited-server host:port|unix:/path]
//                   [--frontier-server host:port|unix:/path]
//                   [--store-batch N] [--no-incremental]
//
// --store-batch sets ExplorerOptions::store_batch_size (walk-mode
// credit batching). With a remote store attached it defaults to 64 so
// the batched wire path is on out of the box; DFS scalar traffic is
// additionally coalesced inside RemoteVisitedStore regardless.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <memory>

#include "mcfs/harness.h"
#include "net/remote_frontier.h"
#include "net/remote_store.h"

int main(int argc, char** argv) {
  using namespace mcfs;
  using namespace mcfs::core;

  const char* visited_server = nullptr;
  const char* frontier_server = nullptr;
  bool incremental = true;
  long store_batch = -1;  // -1 = unset: 64 with a remote store
  const char* positional[3] = {nullptr, nullptr, nullptr};
  int npos = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--visited-server") == 0 && i + 1 < argc) {
      visited_server = argv[++i];
    } else if (std::strcmp(argv[i], "--frontier-server") == 0 &&
               i + 1 < argc) {
      frontier_server = argv[++i];
    } else if (std::strcmp(argv[i], "--store-batch") == 0 && i + 1 < argc) {
      store_batch = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--no-incremental") == 0) {
      incremental = false;
    } else if (npos < 3) {
      positional[npos++] = argv[i];
    }
  }

  const int workers = positional[0] ? std::atoi(positional[0]) : 4;
  const std::uint64_t ops_per_worker =
      positional[1] ? std::strtoull(positional[1], nullptr, 10) : 2000;
  const bool stealing =
      positional[2] && std::strcmp(positional[2], "stealing") == 0;
  const bool cooperative =
      stealing || (positional[2] &&
                   std::strcmp(positional[2], "cooperative") == 0);

  mc::SwarmOptions options;
  options.workers = workers;
  options.cooperative = cooperative;
  options.steal_work = stealing;
  options.base.mode = mc::SearchMode::kDfs;
  options.base.max_operations = ops_per_worker;
  options.base.max_depth = 10;
  // Full visited tables so the merged union can be computed exactly
  // (Spin swarm typically uses bitstate hashing instead, trading the
  // exact union for memory; pass use_bitstate=true for that mode).
  options.base_seed = 1000;

  // Remote attachments: the swarm does not own these, so they live
  // here and outlive the run (their stats feed the report below).
  std::unique_ptr<net::RemoteVisitedStore> remote_store;
  std::unique_ptr<net::RemoteFrontier> remote_frontier;
  if (visited_server != nullptr) {
    auto endpoint = net::ParseEndpoint(visited_server);
    if (!endpoint.ok()) {
      std::fprintf(stderr, "bad --visited-server endpoint '%s'\n",
                   visited_server);
      return 2;
    }
    remote_store = std::make_unique<net::RemoteVisitedStore>(
        endpoint.value(), net::RetryPolicy{});
    options.shared_store = remote_store.get();
  }
  if (frontier_server != nullptr) {
    auto endpoint = net::ParseEndpoint(frontier_server);
    if (!endpoint.ok()) {
      std::fprintf(stderr, "bad --frontier-server endpoint '%s'\n",
                   frontier_server);
      return 2;
    }
    remote_frontier = std::make_unique<net::RemoteFrontier>(
        endpoint.value(), workers, net::RetryPolicy{});
    options.shared_frontier = remote_frontier.get();
  }
  if (store_batch >= 0) {
    options.base.store_batch_size = static_cast<std::size_t>(store_batch);
  } else if (remote_store) {
    // Remote store attached: batch credit flushes by default so scalar
    // round-trips stay off the hot path (ISSUE 9).
    options.base.store_batch_size = 64;
  }

  McfsConfig config;
  config.fs_a.kind = FsKind::kVerifs1;
  config.fs_a.strategy = StateStrategy::kIoctl;
  config.fs_b.kind = FsKind::kVerifs2;
  config.fs_b.strategy = StateStrategy::kIoctl;
  config.engine.pool = ParameterPool::Default();
  // Incremental abstraction is on by default for this coherent ioctl
  // pair — every worker keeps its own epoch-tagged digest caches —
  // which matters double under a shared store: each visited probe is an
  // AbstractHash() call. --no-incremental reverts to full recomputes.
  config.engine.abstraction.incremental = incremental;

  mc::Swarm swarm(options);
  std::printf("launching %d %s workers x %llu ops over "
              "verifs1-vs-verifs2...\n",
              workers,
              stealing ? "cooperative+stealing"
                       : (cooperative ? "cooperative" : "independent"),
              static_cast<unsigned long long>(ops_per_worker));
  if (remote_store) {
    std::printf("shared visited store: %s\n",
                remote_store->endpoint().ToString().c_str());
  }
  if (remote_frontier) {
    std::printf("shared frontier:      %s\n",
                remote_frontier->endpoint().ToString().c_str());
  }

  mc::SwarmResult result = swarm.Run(MakeMcfsSwarmFactory(config));

  std::printf("\n%-8s %12s %14s %12s %10s\n", "worker", "ops",
              "unique states", "backtracks", "cancelled");
  for (std::size_t i = 0; i < result.per_worker.size(); ++i) {
    const auto& stats = result.per_worker[i];
    std::printf("%-8zu %12llu %14llu %12llu %10s\n", i,
                static_cast<unsigned long long>(stats.operations),
                static_cast<unsigned long long>(stats.unique_states),
                static_cast<unsigned long long>(stats.backtracks),
                stats.cancelled ? "yes" : "no");
  }
  std::printf("\nsummed unique states (with overlap): %llu\n",
              static_cast<unsigned long long>(result.summed_unique_states));
  std::printf("merged unique states (union):        %llu\n",
              static_cast<unsigned long long>(result.merged_unique_states));
  std::printf("cross-worker redundant discoveries:  %.1f%%\n",
              100 * result.redundant_discovery_ratio);
  if (stealing) {
    std::printf("frontier: %llu published, %llu stolen (%llu replay ops, "
                "%llu digest mismatches), peak %llu, %.3fs idle\n",
                static_cast<unsigned long long>(result.frontier_published),
                static_cast<unsigned long long>(result.steals),
                static_cast<unsigned long long>(result.steal_replay_ops),
                static_cast<unsigned long long>(
                    result.steal_digest_mismatches),
                static_cast<unsigned long long>(result.frontier_peak),
                result.steal_wait_seconds);
  }
  if (remote_store || remote_frontier) {
    std::printf("remote health: %llu store degradations, %llu frontier "
                "degradations, %llu failed RPCs\n",
                static_cast<unsigned long long>(result.store_degradations),
                static_cast<unsigned long long>(result.frontier_degradations),
                static_cast<unsigned long long>(result.remote_rpc_failures));
  }
  if (remote_store) {
    const auto coalesce = remote_store->coalesce_stats();
    if (coalesce.scalar_calls > 0) {
      std::printf("scalar-RPC coalescing: %llu scalar ops -> %llu wire "
                  "batches\n",
                  static_cast<unsigned long long>(coalesce.scalar_calls),
                  static_cast<unsigned long long>(coalesce.wire_batches));
    }
  }
  if (result.any_violation) {
    std::printf("\nVIOLATION found first by worker %d:\n%s\n",
                result.first_violation_worker,
                result.first_violation_report.c_str());
    return 2;
  }
  std::printf("\nno discrepancies found by any worker.\n");
  return 0;
}

// Swarm verification over VeriFS1-vs-VeriFS2 (paper §2/§7): several
// independent, seed-diversified explorers run in parallel; their visited
// sets are merged afterwards. Prints per-worker coverage and the union,
// showing the coverage gain from diversification.
//
//   ./swarm_explore [workers] [ops_per_worker]
#include <cstdio>
#include <cstdlib>

#include "mcfs/harness.h"

int main(int argc, char** argv) {
  using namespace mcfs;
  using namespace mcfs::core;

  const int workers = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::uint64_t ops_per_worker =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2000;

  mc::SwarmOptions options;
  options.workers = workers;
  options.base.mode = mc::SearchMode::kDfs;
  options.base.max_operations = ops_per_worker;
  options.base.max_depth = 10;
  // Full visited tables so the merged union can be computed exactly
  // (Spin swarm typically uses bitstate hashing instead, trading the
  // exact union for memory; pass use_bitstate=true for that mode).
  options.base_seed = 1000;

  mc::Swarm swarm(options);
  std::printf("launching %d workers x %llu ops over verifs1-vs-verifs2...\n",
              workers, static_cast<unsigned long long>(ops_per_worker));

  mc::SwarmResult result = swarm.Run([](int worker) {
    McfsConfig config;
    config.fs_a.kind = FsKind::kVerifs1;
    config.fs_a.strategy = StateStrategy::kIoctl;
    config.fs_b.kind = FsKind::kVerifs2;
    config.fs_b.strategy = StateStrategy::kIoctl;
    config.engine.pool = ParameterPool::Default();
    auto mcfs = Mcfs::Create(config);
    if (!mcfs.ok()) {
      std::fprintf(stderr, "worker %d setup failed\n", worker);
      std::abort();
    }
    return std::make_unique<McfsSwarmInstance>(std::move(mcfs).value());
  });

  std::printf("\n%-8s %12s %14s %12s\n", "worker", "ops", "unique states",
              "backtracks");
  for (std::size_t i = 0; i < result.per_worker.size(); ++i) {
    const auto& stats = result.per_worker[i];
    std::printf("%-8zu %12llu %14llu %12llu\n", i,
                static_cast<unsigned long long>(stats.operations),
                static_cast<unsigned long long>(stats.unique_states),
                static_cast<unsigned long long>(stats.backtracks));
  }
  std::printf("\nsummed unique states (with overlap): %llu\n",
              static_cast<unsigned long long>(result.summed_unique_states));
  std::printf("merged unique states (union):        %llu\n",
              static_cast<unsigned long long>(result.merged_unique_states));
  if (result.any_violation) {
    std::printf("\nVIOLATION found by a worker:\n%s\n",
                result.first_violation_report.c_str());
    return 2;
  }
  std::printf("\nno discrepancies found by any worker.\n");
  return 0;
}

// Remount ablation — the paper's in-text measurement (§6): "The average
// speed for Ext2 vs. Ext4 (in RAM disks) was 316 ops/s, 38% faster than
// that when remounts and unmounts were used; and for Ext4 vs. XFS it was
// 34 ops/s, which is 70% faster."
//
// kRemountPerOp is the safe default; kMountOnce measures the same
// workload without the inter-operation remount cycle. (Without remounts
// the caches can go stale after restores — §3.2 — so the bench also
// reports any corruption the checker tripped over; with the default
// generous block cache the runs here stay quiet, matching the paper's
// ability to measure average speeds at all.)
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "mcfs/harness.h"

namespace {

using namespace mcfs;
using namespace mcfs::core;

struct Row {
  double ops_per_sec = 0;
  std::uint64_t remounts = 0;
  std::uint64_t corruption = 0;
};

std::map<std::string, Row> g_rows;

void RunCase(benchmark::State& state, const std::string& name, FsKind a,
             FsKind b, StateStrategy strategy, std::uint64_t ops) {
  for (auto _ : state) {
    McfsConfig config;
    config.fs_a.kind = a;
    config.fs_b.kind = b;
    config.fs_a.strategy = strategy;
    config.fs_b.strategy = strategy;
    config.engine.pool = ParameterPool::Default();
    // Speed measurement: don't halt exploration on (possible) staleness
    // effects in the no-remount configuration.
    config.engine.compare_states = strategy != StateStrategy::kMountOnce;
    config.explore.max_operations = ops;
    config.explore.max_depth = 8;
    config.explore.seed = 4;
    auto mcfs = Mcfs::Create(config);
    if (!mcfs.ok()) {
      state.SkipWithError("setup failed");
      return;
    }
    McfsReport report = mcfs.value()->Run();
    Row row;
    row.ops_per_sec = report.sim_ops_per_sec;
    row.remounts = report.remounts_a + report.remounts_b;
    row.corruption = report.counters.corruption_events;
    g_rows[name] = row;
    state.counters["sim_ops_per_s"] = row.ops_per_sec;
    state.counters["remounts"] = static_cast<double>(row.remounts);
  }
}

void PrintSummary() {
  std::printf("\n=== Remount ablation (simulated ops/s) ===\n");
  std::printf("%-34s %12s %10s %12s\n", "configuration", "sim ops/s",
              "remounts", "corruption");
  for (const auto& [name, row] : g_rows) {
    std::printf("%-34s %12.1f %10llu %12llu\n", name.c_str(),
                row.ops_per_sec,
                static_cast<unsigned long long>(row.remounts),
                static_cast<unsigned long long>(row.corruption));
  }
  auto gain = [](const char* without, const char* with) {
    auto iw = g_rows.find(without);
    auto ib = g_rows.find(with);
    if (iw == g_rows.end() || ib == g_rows.end() ||
        ib->second.ops_per_sec == 0) {
      return 0.0;
    }
    return 100.0 * (iw->second.ops_per_sec / ib->second.ops_per_sec - 1.0);
  };
  std::printf("\nshape checks (paper expectation in parentheses):\n");
  std::printf("  ext2-vs-ext4 no-remount speedup: +%.0f%%   (paper: +38%%)\n",
              gain("ext2-vs-ext4 no-remount", "ext2-vs-ext4 remount"));
  std::printf("  ext4-vs-xfs  no-remount speedup: +%.0f%%   (paper: +70%%)\n",
              gain("ext4-vs-xfs no-remount", "ext4-vs-xfs remount"));
}

}  // namespace

int main(int argc, char** argv) {
  auto reg = [](const char* name, FsKind a, FsKind b, StateStrategy s,
                std::uint64_t ops) {
    benchmark::RegisterBenchmark(name, [=](benchmark::State& state) {
      RunCase(state, name, a, b, s, ops);
    })->Iterations(1)->Unit(benchmark::kMillisecond);
  };
  reg("ext2-vs-ext4 remount", FsKind::kExt2, FsKind::kExt4,
      StateStrategy::kRemountPerOp, 1500);
  reg("ext2-vs-ext4 no-remount", FsKind::kExt2, FsKind::kExt4,
      StateStrategy::kMountOnce, 1500);
  reg("ext4-vs-xfs remount", FsKind::kExt4, FsKind::kXfs,
      StateStrategy::kRemountPerOp, 600);
  reg("ext4-vs-xfs no-remount", FsKind::kExt4, FsKind::kXfs,
      StateStrategy::kMountOnce, 600);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintSummary();
  return 0;
}

// False-positive workarounds — paper §3.4.
//
// Runs ext2f-vs-ext4f (remount strategy) four times: once with every
// workaround enabled (expected clean), then once with each workaround
// individually disabled, counting how quickly a spurious "bug" fires.
// The disabled-workaround runs HALT on their first false positive, so
// the column to compare is ops-until-halt.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "mcfs/harness.h"

namespace {

using namespace mcfs;
using namespace mcfs::core;

struct Row {
  std::uint64_t ops = 0;
  bool fired = false;
  std::string first_report;
};

std::map<std::string, Row> g_rows;

enum class Disable { kNone, kDirSizes, kSortDirents, kExceptionList };

void RunCase(benchmark::State& state, const std::string& name,
             Disable disable, FsKind a, FsKind b) {
  for (auto _ : state) {
    McfsConfig config;
    config.fs_a.kind = a;
    config.fs_b.kind = b;
    config.engine.pool = ParameterPool::Default();
    config.explore.max_operations = 1500;
    config.explore.max_depth = 7;
    config.explore.seed = 31;
    switch (disable) {
      case Disable::kNone:
        break;
      case Disable::kDirSizes:
        config.engine.checker.ignore_directory_sizes = false;
        break;
      case Disable::kSortDirents:
        config.engine.checker.sort_dirents = false;
        break;
      case Disable::kExceptionList:
        // Drop /lost+found handling entirely: the engine auto-adds it,
        // so null it out afterwards via the exception-free comparison of
        // dirents only (the abstraction list is rebuilt by the engine;
        // the checker's name list is what getdents comparison uses).
        break;
    }
    auto mcfs = Mcfs::Create(config);
    if (!mcfs.ok()) {
      state.SkipWithError("setup failed");
      return;
    }
    if (disable == Disable::kExceptionList) {
      // Strip the auto-added /lost+found filtering after construction.
      mcfs.value()->engine().mutable_options().checker.special_names
          .clear();
      mcfs.value()->engine().mutable_options().abstraction.exception_list
          .clear();
    }
    McfsReport report = mcfs.value()->Run();
    Row row;
    row.ops = report.stats.operations;
    row.fired = report.stats.violation_found;
    row.first_report = report.stats.violation_report;
    g_rows[name] = row;
    state.counters["ops_until_halt"] = static_cast<double>(row.ops);
    state.counters["false_positive"] = row.fired ? 1 : 0;
  }
}

void PrintSummary() {
  std::printf("\n=== False-positive workarounds (§3.4) ===\n");
  std::printf("%-40s %10s %8s\n", "configuration", "ops", "spurious?");
  for (const auto& [name, row] : g_rows) {
    std::printf("%-40s %10llu %8s\n", name.c_str(),
                static_cast<unsigned long long>(row.ops),
                row.fired ? "YES" : "no");
    if (row.fired) {
      std::printf("    first report: %s\n", row.first_report.c_str());
    }
  }
  std::printf("\nEach §3.4 workaround suppresses one class of "
              "unstandardized cross-FS difference;\ndisabling it turns "
              "that difference straight into a spurious bug report.\n");
}

}  // namespace

int main(int argc, char** argv) {
  auto reg = [](const char* name, Disable disable, FsKind a, FsKind b) {
    benchmark::RegisterBenchmark(name, [=](benchmark::State& state) {
      RunCase(state, name, disable, a, b);
    })->Iterations(1)->Unit(benchmark::kMillisecond);
  };
  // Dir sizes and getdents ordering need a pair whose traits actually
  // differ (ext4f: block-rounded sizes, insertion order; xfsf: entry
  // sizes, reversed order — paper §3.4). lost+found needs an ext4f pair.
  reg("all workarounds on (control)", Disable::kNone, FsKind::kExt4,
      FsKind::kXfs);
  reg("dir-size comparison enabled", Disable::kDirSizes, FsKind::kExt4,
      FsKind::kXfs);
  reg("getdents sorting disabled", Disable::kSortDirents, FsKind::kExt4,
      FsKind::kXfs);
  reg("special-folder exception list off", Disable::kExceptionList,
      FsKind::kExt2, FsKind::kExt4);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintSummary();
  return 0;
}

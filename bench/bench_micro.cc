// Microbenchmarks for the building blocks (host wall-clock, via google
// benchmark's normal timing): MD5 throughput, abstraction-function walk,
// VeriFS checkpoint/restore, FUSE round trip, visited-table insertion,
// bitstate insertion, and block-device copies. These are the knobs the
// macro results (Figures 2-3) are built from.
#include <benchmark/benchmark.h>

#include "fs/ext2/ext2fs.h"
#include "fuse/fuse_channel.h"
#include "fuse/fuse_host.h"
#include "fuse/fuse_kernel.h"
#include "mc/bitstate.h"
#include "mc/hash_table.h"
#include "mcfs/abstraction.h"
#include "storage/ram_disk.h"
#include "util/md5.h"
#include "verifs/verifs2.h"

namespace {

using namespace mcfs;

void BM_Md5Throughput(benchmark::State& state) {
  const Bytes payload(static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Md5::Hash(payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Md5Throughput)->Arg(64)->Arg(4096)->Arg(65536);

void BM_VisitedTableInsert(benchmark::State& state) {
  mc::VisitedTable table(1024);
  std::uint64_t i = 0;
  for (auto _ : state) {
    Md5 md5;
    md5.UpdateU64(i++);
    benchmark::DoNotOptimize(table.Insert(md5.Final()));
  }
}
BENCHMARK(BM_VisitedTableInsert);

void BM_BitstateInsert(benchmark::State& state) {
  mc::BitstateFilter filter(1 << 24);
  std::uint64_t i = 0;
  for (auto _ : state) {
    Md5 md5;
    md5.UpdateU64(i++);
    benchmark::DoNotOptimize(filter.Insert(md5.Final()));
  }
}
BENCHMARK(BM_BitstateInsert);

void BM_VerifsCheckpoint(benchmark::State& state) {
  verifs::Verifs2 v;
  (void)v.Mkfs();
  (void)v.Mount();
  // Populate with a representative tree.
  for (int i = 0; i < 8; ++i) {
    auto fd = v.Open("/f" + std::to_string(i), fs::kCreate | fs::kWrOnly,
                     0644);
    if (fd.ok()) {
      (void)v.Write(fd.value(), 0,
                    Bytes(static_cast<std::size_t>(state.range(0)), 'c'));
      (void)v.Close(fd.value());
    }
  }
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.IoctlCheckpoint(++key));
  }
  state.counters["state_bytes"] = static_cast<double>(
      v.SnapshotBytes() / std::max<std::uint64_t>(v.SnapshotCount(), 1));
}
BENCHMARK(BM_VerifsCheckpoint)->Arg(1024)->Arg(16384);

void BM_VerifsCheckpointRestoreCycle(benchmark::State& state) {
  verifs::Verifs2 v;
  (void)v.Mkfs();
  (void)v.Mount();
  auto fd = v.Open("/f", fs::kCreate | fs::kWrOnly, 0644);
  if (fd.ok()) {
    (void)v.Write(fd.value(), 0, Bytes(4096, 'r'));
    (void)v.Close(fd.value());
  }
  for (auto _ : state) {
    (void)v.IoctlCheckpoint(1);
    (void)v.IoctlRestore(1);
  }
}
BENCHMARK(BM_VerifsCheckpointRestoreCycle);

void BM_FuseRoundTrip(benchmark::State& state) {
  fuse::FuseChannel channel(nullptr);
  auto hosted = std::make_shared<verifs::Verifs2>();
  fuse::FuseHost host(hosted, &channel);
  fuse::FuseClientFs client(&channel);
  (void)client.Mkfs();
  (void)client.Mount();
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.GetAttr("/"));
  }
}
BENCHMARK(BM_FuseRoundTrip);

void BM_AbstractionWalk(benchmark::State& state) {
  auto disk = std::make_shared<storage::RamDisk>("d", 256 * 1024, nullptr);
  auto ext2 = std::make_shared<fs::Ext2Fs>(disk);
  vfs::Vfs v(ext2, nullptr);
  (void)ext2->Mkfs();
  (void)v.Mount();
  for (int i = 0; i < state.range(0); ++i) {
    auto fd = v.Open("/f" + std::to_string(i), fs::kCreate | fs::kWrOnly,
                     0644);
    if (fd.ok()) {
      (void)v.Write(fd.value(), 0, Bytes(1024, 'w'));
      (void)v.Close(fd.value());
    }
  }
  const core::AbstractionOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ComputeAbstractState(v, options));
  }
  state.counters["files"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_AbstractionWalk)->Arg(4)->Arg(16);

void BM_DeviceSnapshotRestore(benchmark::State& state) {
  storage::RamDisk disk("d", static_cast<std::uint64_t>(state.range(0)),
                        nullptr);
  const Bytes snapshot = disk.SnapshotContents();
  for (auto _ : state) {
    benchmark::DoNotOptimize(disk.SnapshotContents());
    benchmark::DoNotOptimize(disk.RestoreContents(snapshot));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 2);
}
BENCHMARK(BM_DeviceSnapshotRestore)
    ->Arg(256 * 1024)
    ->Arg(16 * 1024 * 1024);

void BM_Ext2MountCycle(benchmark::State& state) {
  auto disk = std::make_shared<storage::RamDisk>("d", 256 * 1024, nullptr);
  fs::Ext2Fs ext2(disk);
  (void)ext2.Mkfs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ext2.Mount());
    benchmark::DoNotOptimize(ext2.Unmount());
  }
}
BENCHMARK(BM_Ext2MountCycle);

}  // namespace

BENCHMARK_MAIN();

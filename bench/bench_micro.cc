// Microbenchmarks for the building blocks (host wall-clock, via google
// benchmark's normal timing): MD5 throughput, abstraction-function walk,
// VeriFS checkpoint/restore, FUSE round trip, visited-table insertion,
// bitstate insertion, and block-device copies. These are the knobs the
// macro results (Figures 2-3) are built from.
#include <benchmark/benchmark.h>

#include "fs/ext2/ext2fs.h"
#include "fuse/fuse_channel.h"
#include "fuse/fuse_host.h"
#include "fuse/fuse_kernel.h"
#include "mc/bitstate.h"
#include "mc/hash_table.h"
#include "mcfs/abstraction.h"
#include "mcfs/ops.h"
#include "mcfs/trace.h"
#include "storage/ram_disk.h"
#include "util/md5.h"
#include "verifs/verifs2.h"

namespace {

using namespace mcfs;

void BM_Md5Throughput(benchmark::State& state) {
  const Bytes payload(static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Md5::Hash(payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Md5Throughput)->Arg(64)->Arg(4096)->Arg(65536);

void BM_VisitedTableInsert(benchmark::State& state) {
  mc::VisitedTable table(1024);
  std::uint64_t i = 0;
  for (auto _ : state) {
    Md5 md5;
    md5.UpdateU64(i++);
    benchmark::DoNotOptimize(table.Insert(md5.Final()));
  }
}
BENCHMARK(BM_VisitedTableInsert);

void BM_BitstateInsert(benchmark::State& state) {
  mc::BitstateFilter filter(1 << 24);
  std::uint64_t i = 0;
  for (auto _ : state) {
    Md5 md5;
    md5.UpdateU64(i++);
    benchmark::DoNotOptimize(filter.Insert(md5.Final()));
  }
}
BENCHMARK(BM_BitstateInsert);

void BM_VerifsCheckpoint(benchmark::State& state) {
  verifs::Verifs2 v;
  (void)v.Mkfs();
  (void)v.Mount();
  // Populate with a representative tree.
  for (int i = 0; i < 8; ++i) {
    auto fd = v.Open("/f" + std::to_string(i), fs::kCreate | fs::kWrOnly,
                     0644);
    if (fd.ok()) {
      (void)v.Write(fd.value(), 0,
                    Bytes(static_cast<std::size_t>(state.range(0)), 'c'));
      (void)v.Close(fd.value());
    }
  }
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.IoctlCheckpoint(++key));
  }
  state.counters["state_bytes"] = static_cast<double>(
      v.SnapshotBytes() / std::max<std::uint64_t>(v.SnapshotCount(), 1));
}
BENCHMARK(BM_VerifsCheckpoint)->Arg(1024)->Arg(16384);

void BM_VerifsCheckpointRestoreCycle(benchmark::State& state) {
  verifs::Verifs2 v;
  (void)v.Mkfs();
  (void)v.Mount();
  auto fd = v.Open("/f", fs::kCreate | fs::kWrOnly, 0644);
  if (fd.ok()) {
    (void)v.Write(fd.value(), 0, Bytes(4096, 'r'));
    (void)v.Close(fd.value());
  }
  for (auto _ : state) {
    (void)v.IoctlCheckpoint(1);
    (void)v.IoctlRestore(1);
  }
}
BENCHMARK(BM_VerifsCheckpointRestoreCycle);

void BM_FuseRoundTrip(benchmark::State& state) {
  fuse::FuseChannel channel(nullptr);
  auto hosted = std::make_shared<verifs::Verifs2>();
  fuse::FuseHost host(hosted, &channel);
  fuse::FuseClientFs client(&channel);
  (void)client.Mkfs();
  (void)client.Mount();
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.GetAttr("/"));
  }
}
BENCHMARK(BM_FuseRoundTrip);

void BM_AbstractionWalk(benchmark::State& state) {
  auto disk = std::make_shared<storage::RamDisk>("d", 256 * 1024, nullptr);
  auto ext2 = std::make_shared<fs::Ext2Fs>(disk);
  vfs::Vfs v(ext2, nullptr);
  (void)ext2->Mkfs();
  (void)v.Mount();
  for (int i = 0; i < state.range(0); ++i) {
    auto fd = v.Open("/f" + std::to_string(i), fs::kCreate | fs::kWrOnly,
                     0644);
    if (fd.ok()) {
      (void)v.Write(fd.value(), 0, Bytes(1024, 'w'));
      (void)v.Close(fd.value());
    }
  }
  const core::AbstractionOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ComputeAbstractState(v, options));
  }
  state.counters["files"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_AbstractionWalk)->Arg(4)->Arg(16);

// ---------------------------------------------------------------------------
// Incremental-vs-full ablation (DESIGN.md §7.4): one single-path
// operation per iteration followed by one abstract digest, over
// tree size x file size x op mix. The full variant re-walks and
// re-reads everything per step (Algorithm 1 literally); the incremental
// variant re-hashes only the touched paths and folds the cache.
// Run `scripts/bench_micro.sh` for the JSON form tracked in
// EXPERIMENTS.md.

struct AblationTree {
  std::shared_ptr<verifs::Verifs2> filesystem;
  std::unique_ptr<vfs::Vfs> v;
  std::vector<std::string> files;
};

AblationTree MakeAblationTree(std::int64_t files, std::int64_t file_size) {
  AblationTree tree;
  tree.filesystem = std::make_shared<verifs::Verifs2>();
  tree.v = std::make_unique<vfs::Vfs>(tree.filesystem, nullptr);
  (void)tree.filesystem->Mkfs();
  (void)tree.v->Mount();
  for (int d = 0; d < 8; ++d) {
    (void)tree.v->Mkdir("/d" + std::to_string(d), 0755);
  }
  for (std::int64_t i = 0; i < files; ++i) {
    std::string path =
        "/d" + std::to_string(i % 8) + "/f" + std::to_string(i);
    auto fd = tree.v->Open(path, fs::kCreate | fs::kWrOnly, 0644);
    if (fd.ok()) {
      (void)tree.v->Write(fd.value(), 0,
                          Bytes(static_cast<std::size_t>(file_size), 'a'));
      (void)tree.v->Close(fd.value());
    }
    tree.files.push_back(std::move(path));
  }
  return tree;
}

// Op mixes: 0 = overwrite one file in place, 1 = create/unlink churn,
// 2 = rename one file back and forth. All single-path mutations — the
// case where the full recompute's O(tree) cost is pure overhead.
core::Operation AblationOp(const AblationTree& tree, std::int64_t mix,
                           std::uint64_t step) {
  const std::string& target = tree.files[step % tree.files.size()];
  core::Operation op;
  switch (mix) {
    case 0:
      op.kind = core::OpKind::kWriteFile;
      op.path = target;
      op.size = 64;
      op.fill = static_cast<std::uint8_t>(step);
      break;
    case 1:
      op.kind = step % 2 == 0 ? core::OpKind::kCreateFile
                              : core::OpKind::kUnlink;
      op.path = "/churn";
      break;
    default:
      op.kind = core::OpKind::kRename;
      op.path = step % 2 == 0 ? target : target + "~";
      op.path2 = step % 2 == 0 ? target + "~" : target;
      break;
  }
  return op;
}

void BM_AbstractionStepFull(benchmark::State& state) {
  AblationTree tree = MakeAblationTree(state.range(0), state.range(1));
  const core::AbstractionOptions options;
  std::uint64_t step = 0;
  for (auto _ : state) {
    (void)core::ExecuteOp(*tree.v, AblationOp(tree, state.range(2), step++));
    benchmark::DoNotOptimize(core::ComputeAbstractState(*tree.v, options));
  }
  state.counters["paths"] = static_cast<double>(tree.files.size() + 8);
}
BENCHMARK(BM_AbstractionStepFull)
    ->ArgsProduct({{16, 64, 256}, {256, 4096}, {0, 1, 2}});

void BM_AbstractionStepIncremental(benchmark::State& state) {
  AblationTree tree = MakeAblationTree(state.range(0), state.range(1));
  const core::AbstractionOptions options;
  core::IncrementalAbstraction inc;
  (void)inc.FullRecompute(*tree.v, options);
  std::uint64_t step = 0;
  for (auto _ : state) {
    const core::Operation op = AblationOp(tree, state.range(2), step++);
    const core::OpOutcome outcome = core::ExecuteOp(*tree.v, op);
    benchmark::DoNotOptimize(
        inc.Refresh(*tree.v, options, core::TouchedPaths(op, outcome)));
  }
  state.counters["paths"] = static_cast<double>(tree.files.size() + 8);
  state.counters["rehashed_per_step"] =
      benchmark::Counter(static_cast<double>(inc.nodes_rehashed()),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_AbstractionStepIncremental)
    ->ArgsProduct({{16, 64, 256}, {256, 4096}, {0, 1, 2}});

void BM_DeviceSnapshotRestore(benchmark::State& state) {
  storage::RamDisk disk("d", static_cast<std::uint64_t>(state.range(0)),
                        nullptr);
  const Bytes snapshot = disk.SnapshotContents();
  for (auto _ : state) {
    benchmark::DoNotOptimize(disk.SnapshotContents());
    benchmark::DoNotOptimize(disk.RestoreContents(snapshot));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 2);
}
BENCHMARK(BM_DeviceSnapshotRestore)
    ->Arg(256 * 1024)
    ->Arg(16 * 1024 * 1024);

void BM_Ext2MountCycle(benchmark::State& state) {
  auto disk = std::make_shared<storage::RamDisk>("d", 256 * 1024, nullptr);
  fs::Ext2Fs ext2(disk);
  (void)ext2.Mkfs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ext2.Mount());
    benchmark::DoNotOptimize(ext2.Unmount());
  }
}
BENCHMARK(BM_Ext2MountCycle);

}  // namespace

BENCHMARK_MAIN();

// Figure 3 reproduction: a long MCFS run over VeriFS1, tracking operation
// rate and swap usage over (simulated) time.
//
// The paper's two-week trace has four phases:
//   1. a ~1,500 ops/s plateau for the first ~3 days;
//   2. a drastic rate drop with a swap spike when Spin resizes its
//      visited-state hash table;
//   3. a gradual decay as checkpointed states outgrow RAM and swap time
//      dominates;
//   4. a rebound near days 13-14 when the working set happens to be
//      RAM-resident ("the RAM hit rate was high").
// We reproduce the same phases at laptop scale: the RAM budget is scaled
// down so the state store spills within the run, the rehash cost is
// charged per displaced entry, and the memory model's locality knob is
// raised late in the run to model the observed hit-rate rebound.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string_view>
#include <vector>

#include "mcfs/harness.h"

namespace {

using namespace mcfs;
using namespace mcfs::core;

struct SeriesRow {
  double sim_hours;
  double ops_per_sec;     // instantaneous (since the previous sample)
  double swap_mb;
  std::uint64_t resizes;
};

std::vector<SeriesRow> g_series;

// Incremental abstraction (on by default for this coherent ioctl pair;
// --no-incremental falls back to a full recompute per step for A/B
// comparison of the long-run rate).
bool g_incremental = true;

void RunLongRun(benchmark::State& state, std::uint64_t total_ops) {
  for (auto _ : state) {
    McfsConfig config;
    config.fs_a.kind = FsKind::kVerifs1;
    config.fs_a.strategy = StateStrategy::kIoctl;
    config.fs_b.kind = FsKind::kVerifs1;  // paper: "checking VeriFS1"
    config.fs_b.strategy = StateStrategy::kIoctl;
    config.engine.abstraction.incremental = g_incremental;
    config.engine.pool = ParameterPool::Default();
    config.explore.mode = mc::SearchMode::kRandomWalk;
    config.explore.max_operations = total_ops;
    config.explore.seed = 12;
    config.explore.rehash_cost_per_entry = 120'000;  // visible stalls
    config.enable_memory_model = true;
    // Scaled-down memory system (paper: 64 GB RAM + 128 GB swap).
    config.memory.ram_bytes = 48ull << 20;
    config.memory.swap_bytes = 4ull << 30;
    config.memory.swap_in_cost_per_mb = 2'000'000;
    config.memory.swap_out_cost_per_mb = 2'000'000;

    auto mcfs = Mcfs::Create(config);
    if (!mcfs.ok()) {
      state.SkipWithError("setup failed");
      return;
    }
    Mcfs& m = *mcfs.value();

    g_series.clear();
    double last_sim_seconds = 0;
    std::uint64_t last_ops = 0;
    config.explore.progress_interval_ops = total_ops / 60;

    mc::ExplorerOptions opts = config.explore;
    opts.clock = &m.clock();
    opts.memory = m.memory();
    opts.progress_callback = [&](const mc::ProgressSample& sample) {
      const double dt = sample.sim_seconds - last_sim_seconds;
      const double dops =
          static_cast<double>(sample.operations - last_ops);
      g_series.push_back(SeriesRow{
          sample.sim_seconds / 3600.0, dt > 0 ? dops / dt : 0,
          static_cast<double>(sample.swap_used_bytes) / (1 << 20),
          sample.table_resizes});
      last_sim_seconds = sample.sim_seconds;
      last_ops = sample.operations;
      // Phase 4: late in the run the working set turns RAM-resident
      // (the paper's day-13..14 hit-rate rebound).
      const double progress = static_cast<double>(sample.operations) /
                              static_cast<double>(total_ops);
      m.memory()->SetLocality(progress > 0.85 ? 1.0 : 0.0);
    };

    mc::Explorer explorer(m.engine(), opts);
    mc::ExploreStats stats = explorer.Run();
    state.counters["ops"] = static_cast<double>(stats.operations);
    state.counters["unique_states"] =
        static_cast<double>(stats.unique_states);
    state.counters["sim_hours"] = stats.sim_seconds / 3600.0;
    state.counters["abs_full"] = static_cast<double>(
        m.engine().counters().abstraction_full_recomputes);
    state.counters["abs_incr"] = static_cast<double>(
        m.engine().counters().abstraction_incremental_refreshes);
    if (stats.violation_found) {
      state.SkipWithError("unexpected violation");
      return;
    }
  }
}

void PrintSeries() {
  std::printf("\n=== Figure 3: rate and swap usage over simulated time ===\n");
  std::printf("%10s %14s %12s %10s\n", "sim hours", "ops/s (inst)",
              "swap MB", "resizes");
  for (const auto& row : g_series) {
    std::printf("%10.2f %14.1f %12.1f %10llu\n", row.sim_hours,
                row.ops_per_sec, row.swap_mb,
                static_cast<unsigned long long>(row.resizes));
  }

  // Phase detection for the shape check.
  if (g_series.size() < 10) return;
  const double early_rate = g_series[1].ops_per_sec;
  double min_mid_rate = 1e18;
  std::size_t min_index = 0;
  for (std::size_t i = 2; i + 5 < g_series.size(); ++i) {
    if (g_series[i].ops_per_sec < min_mid_rate) {
      min_mid_rate = g_series[i].ops_per_sec;
      min_index = i;
    }
  }
  const double late_rate = g_series.back().ops_per_sec;
  std::printf("\nshape checks (paper expectation):\n");
  std::printf("  early plateau rate      %8.1f ops/s  (~1500)\n",
              early_rate);
  std::printf("  mid-run minimum rate    %8.1f ops/s  (swap-dominated "
              "trough at sample %zu)\n",
              min_mid_rate, min_index);
  std::printf("  final (rebound) rate    %8.1f ops/s  (recovers when the "
              "RAM hit rate is high)\n",
              late_rate);
  std::printf("  swap at end             %8.1f MB     (grows over the "
              "run)\n",
              g_series.back().swap_mb);
}

}  // namespace

int main(int argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--no-incremental") {
      g_incremental = false;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::RegisterBenchmark("fig3-longrun-verifs1",
                               [](benchmark::State& state) {
                                 RunLongRun(state, 120'000);
                               })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintSeries();
  return 0;
}

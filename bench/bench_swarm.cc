// Swarm verification scaling — paper §2(iii)/§7: seed-diversified
// parallel verifiers jointly cover more of a large state space.
//
// Part 1 sweeps worker counts for the share-nothing (Spin-style) swarm
// and reports merged (union) coverage vs the best single worker.
//
// Part 2 compares the independent swarm against the cooperative swarm
// (shared lock-striped visited store): total operations for 4 workers to
// cover the same number of unique states a single worker reaches, plus
// the cross-worker redundant-discovery ratio. Cooperation prunes peer
// revisits, so the cooperative swarm needs strictly fewer operations.
// Part 2b demonstrates the work-stealing frontier (mc::SharedFrontier)
// on a *closed* state space, where the cooperative trade-offs invert:
// the random walk — the plain cooperative mode's workhorse — collapses
// near full coverage (reaching the last states of a closed ball is what
// walks are worst at), and partitioned DFS without stealing starves
// every late worker (DESIGN.md §7.1: their whole root subtree is
// peer-claimed, so they exhaust and retire having discovered nothing).
// Stealing fixes both: starved workers adopt donated branches and the
// swarm reaches the coverage target K with systematic-search economy.
// Ops-to-K is counted honestly — trail-replay actions are included —
// and the rows export steals, replay ops, frontier peak, idle time,
// and how many workers actually contributed discoveries.
//
// Part 3 measures the distributed swarm (DESIGN.md §7.3) over a
// loopback visited server: first raw remote-insert throughput, batched
// vs scalar — the round-trip amortization the batch API redesign
// exists for — then ops-to-K for two single-worker swarm "processes"
// sharing one visited server + frontier server versus one two-worker
// process with in-process sharing. Same total worker count, so the
// delta is the price (or not) of putting sockets in the middle.
//
// Part 4 seeds a VeriFS1 bug and measures that the first violation
// cancels all cooperative workers promptly (no budget burn, no hang).
//
// All figures are exported as benchmark counters, so
// --benchmark_format=json carries the full comparison.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "mcfs/harness.h"
#include "net/frontier_service.h"
#include "net/remote_frontier.h"
#include "net/remote_store.h"
#include "net/server.h"
#include "net/visited_service.h"

namespace {

using namespace mcfs;
using namespace mcfs::core;

McfsConfig VerifsPairConfig() {
  McfsConfig config;
  config.fs_a.kind = FsKind::kVerifs1;
  config.fs_a.strategy = StateStrategy::kIoctl;
  config.fs_b.kind = FsKind::kVerifs2;
  config.fs_b.strategy = StateStrategy::kIoctl;
  config.engine.pool = ParameterPool::Default();
  return config;
}

// ---------------------------------------------------------------------------
// Part 1: share-nothing scaling sweep (unchanged shape from the paper).

struct Row {
  std::uint64_t merged_unique = 0;
  std::uint64_t best_single = 0;
  std::uint64_t total_ops = 0;
  double wall_seconds = 0;
};

std::map<int, Row> g_rows;

void RunSwarm(benchmark::State& state, int workers) {
  for (auto _ : state) {
    mc::SwarmOptions options;
    options.workers = workers;
    options.base.mode = mc::SearchMode::kDfs;
    options.base.max_operations = 1500;
    options.base.max_depth = 9;
    // Full visited tables (not bitstate) so the merged union is exact.
    options.base_seed = 100;

    mc::Swarm swarm(options);
    const auto start = std::chrono::steady_clock::now();
    mc::SwarmResult result = swarm.Run(MakeMcfsSwarmFactory(VerifsPairConfig()));
    Row row;
    row.merged_unique = result.merged_unique_states;
    row.total_ops = result.total_operations;
    row.wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
    for (const auto& stats : result.per_worker) {
      row.best_single = std::max(row.best_single, stats.unique_states);
    }
    g_rows[workers] = row;
    state.counters["merged_unique"] =
        static_cast<double>(row.merged_unique);
    state.counters["ops_per_wall_s"] =
        row.wall_seconds > 0
            ? static_cast<double>(row.total_ops) / row.wall_seconds
            : 0;
  }
}

// ---------------------------------------------------------------------------
// Part 2: independent vs cooperative, ops to cover K unique states.

struct CompareRow {
  std::uint64_t total_ops = 0;
  std::uint64_t merged_unique = 0;
  double redundant_discovery = 0;  // (summed - merged) / summed
  double revisit_ratio = 0;        // revisits / operations
  double wall_seconds = 0;
};

std::map<std::string, CompareRow> g_compare;
std::uint64_t g_target_states = 0;  // K, set by the single-worker run

constexpr std::uint64_t kSingleWorkerBudget = 1200;
constexpr int kCompareWorkers = 4;

CompareRow Summarize(const mc::SwarmResult& result, double wall) {
  CompareRow row;
  row.total_ops = result.total_operations;
  row.merged_unique = result.merged_unique_states;
  row.redundant_discovery = result.redundant_discovery_ratio;
  row.revisit_ratio =
      result.total_operations > 0
          ? static_cast<double>(result.total_revisits) /
                static_cast<double>(result.total_operations)
          : 0;
  row.wall_seconds = wall;
  return row;
}

void ExportCounters(benchmark::State& state, const CompareRow& row) {
  state.counters["ops_to_target"] = static_cast<double>(row.total_ops);
  state.counters["merged_unique"] = static_cast<double>(row.merged_unique);
  state.counters["redundant_discovery_ratio"] = row.redundant_discovery;
  state.counters["revisit_ratio"] = row.revisit_ratio;
}

void RunCompare(benchmark::State& state, const std::string& label,
                bool cooperative) {
  for (auto _ : state) {
    mc::SwarmOptions options;
    options.workers = label == "single" ? 1 : kCompareWorkers;
    options.cooperative = cooperative;
    options.base.mode = mc::SearchMode::kRandomWalk;
    options.base_seed = 500;
    if (label == "single") {
      options.base.max_operations = kSingleWorkerBudget;
    } else {
      // Stop at K states; the budget is only a hang backstop.
      options.base.max_operations = 16 * kSingleWorkerBudget;
      options.base.target_unique_states = g_target_states;
    }

    mc::Swarm swarm(options);
    const auto start = std::chrono::steady_clock::now();
    mc::SwarmResult result = swarm.Run(MakeMcfsSwarmFactory(VerifsPairConfig()));
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    g_compare[label] = Summarize(result, wall);
    if (label == "single") g_target_states = result.merged_unique_states;
    ExportCounters(state, g_compare[label]);
  }
}

// ---------------------------------------------------------------------------
// Part 2b: the work-stealing frontier on a closed state space.

// Tiny widened to three files and two fill bytes: a ~670-state closure
// that solo DFS exhausts in a few thousand operations, so "cover K"
// means "nearly finish the space" — the regime §7.1's starvation
// actually bites in.
McfsConfig ClosedBallConfig() {
  McfsConfig config;
  config.fs_a.kind = FsKind::kVerifs1;
  config.fs_a.strategy = StateStrategy::kIoctl;
  config.fs_b.kind = FsKind::kVerifs2;
  config.fs_b.strategy = StateStrategy::kIoctl;
  config.engine.pool = ParameterPool::Tiny();
  config.engine.pool.file_paths = {"/f0", "/f1", "/f2"};
  config.engine.pool.fill_bytes = {0x41, 0x42};
  return config;
}

constexpr std::uint64_t kStealSingleBudget = 4000;
constexpr std::uint32_t kStealDepth = 64;  // >> closure diameter

struct StealRow {
  std::uint64_t total_ops = 0;  // includes replay ops
  std::uint64_t merged_unique = 0;
  bool reached_target = false;
  std::uint64_t steals = 0;
  std::uint64_t steal_replay_ops = 0;
  std::uint64_t frontier_peak = 0;
  double steal_wait_seconds = 0;
  int contributing_workers = 0;  // workers that discovered any state
  double wall_seconds = 0;
};

std::map<std::string, StealRow> g_steal;
std::uint64_t g_steal_target = 0;  // K2, set by the single-DFS run

void RunStealCompare(benchmark::State& state, const std::string& label,
                     mc::SearchMode mode, bool steal) {
  for (auto _ : state) {
    mc::SwarmOptions options;
    options.workers = label == "single-dfs" ? 1 : kCompareWorkers;
    options.cooperative = label != "single-dfs";
    options.steal_work = steal;
    options.base.mode = mode;
    options.base.max_depth = kStealDepth;
    options.base_seed = 500;
    if (label == "single-dfs") {
      options.base.max_operations = kStealSingleBudget;
    } else {
      // Generous backstop: the walk row is *expected* to burn it without
      // reaching K — that failure is the result being measured.
      options.base.max_operations = 10 * kStealSingleBudget;
      options.base.target_unique_states = g_steal_target;
    }

    mc::Swarm swarm(options);
    const auto start = std::chrono::steady_clock::now();
    mc::SwarmResult result =
        swarm.Run(MakeMcfsSwarmFactory(ClosedBallConfig()));
    StealRow row;
    row.total_ops = result.total_operations + result.steal_replay_ops;
    row.merged_unique = result.merged_unique_states;
    row.reached_target = label == "single-dfs" ||
                         result.merged_unique_states >= g_steal_target;
    row.steals = result.steals;
    row.steal_replay_ops = result.steal_replay_ops;
    row.frontier_peak = result.frontier_peak;
    row.steal_wait_seconds = result.steal_wait_seconds;
    for (const auto& stats : result.per_worker) {
      if (stats.unique_states > 0) ++row.contributing_workers;
    }
    row.wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
    g_steal[label] = row;
    if (label == "single-dfs") g_steal_target = result.merged_unique_states;

    state.counters["ops_to_target"] = static_cast<double>(row.total_ops);
    state.counters["merged_unique"] = static_cast<double>(row.merged_unique);
    state.counters["reached_target"] = row.reached_target ? 1 : 0;
    state.counters["steals"] = static_cast<double>(row.steals);
    state.counters["steal_replay_ops"] =
        static_cast<double>(row.steal_replay_ops);
    state.counters["frontier_peak"] =
        static_cast<double>(row.frontier_peak);
    state.counters["steal_wait_seconds"] = row.steal_wait_seconds;
    state.counters["contributing_workers"] =
        static_cast<double>(row.contributing_workers);
  }
}

// ---------------------------------------------------------------------------
// Part 3: the distributed swarm over a loopback visited server.

constexpr std::uint64_t kRemoteInsertDigests = 20'000;

std::map<int, double> g_remote_insert;  // batch size -> inserts per second

// Inserts kRemoteInsertDigests unique digests through a
// RemoteVisitedStore in batches of `batch` (batch 1 = the scalar API:
// one full round-trip per digest).
void RunRemoteInsertThroughput(benchmark::State& state, int batch) {
  for (auto _ : state) {
    mc::ShardedVisitedTable table;
    net::VisitedService service(&table);
    net::FrameServer server({&service});
    net::Endpoint loopback;
    loopback.host = "127.0.0.1";
    loopback.port = 0;
    if (!server.Start(loopback).ok()) {
      state.SkipWithError("failed to bind loopback server");
      return;
    }
    net::RemoteVisitedStore store(server.endpoint());

    std::vector<Md5Digest> digests(static_cast<std::size_t>(batch));
    const auto start = std::chrono::steady_clock::now();
    std::uint64_t sent = 0;
    while (sent < kRemoteInsertDigests) {
      const std::size_t n = static_cast<std::size_t>(
          std::min<std::uint64_t>(batch, kRemoteInsertDigests - sent));
      for (std::size_t i = 0; i < n; ++i) {
        Md5 md5;
        md5.UpdateU64(sent + i);
        digests[i] = md5.Final();
      }
      store.InsertBatch(std::span<const Md5Digest>(digests.data(), n));
      sent += n;
    }
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    server.Stop();

    const double rate =
        wall > 0 ? static_cast<double>(kRemoteInsertDigests) / wall : 0;
    g_remote_insert[batch] = rate;
    state.counters["inserts_per_s"] = rate;
    state.counters["degradations"] =
        static_cast<double>(store.health().degrade_events);
    if (table.size() != kRemoteInsertDigests) {
      state.SkipWithError("remote table lost digests");
    }
  }
}

// Connection scaling (DESIGN.md §7.9): N single-connection clients
// hammer scalar inserts at one visited server, epoll reactor vs the
// thread-per-connection baseline. The reactor serves every row from
// one loop thread; the baseline pays one OS thread per connection, and
// the context-switch tax shows up as the worker count grows. Scalar
// (batch-1) traffic on purpose: per-connection round-trip handling is
// exactly what the serving model changes.
constexpr std::uint64_t kConnScaleInserts = 8192;  // total, split evenly

struct ConnRow {
  double inserts_per_s = 0;
  int serving_threads = 0;
};

std::map<std::string, ConnRow> g_conn;  // "model:workers" -> row

void RunConnScaling(benchmark::State& state, bool reactor, int workers) {
  for (auto _ : state) {
    net::ServerOptions server_options;
    server_options.model = reactor
                               ? net::ServerOptions::Model::kReactor
                               : net::ServerOptions::Model::kThreadPerConn;
    mc::ShardedVisitedTable table;
    net::VisitedService service(&table);
    net::FrameServer server({&service}, server_options);
    net::Endpoint loopback;
    loopback.host = "127.0.0.1";
    loopback.port = 0;
    if (!server.Start(loopback).ok()) {
      state.SkipWithError("failed to bind loopback server");
      return;
    }

    const std::uint64_t per_worker =
        kConnScaleInserts / static_cast<std::uint64_t>(workers);
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    for (int w = 0; w < workers; ++w) {
      clients.emplace_back([&, w] {
        // Own store object = own connection, as separate processes
        // would hold. Scalar inserts: one round-trip each on the wire.
        net::RemoteVisitedStore store(server.endpoint());
        for (std::uint64_t i = 0; i < per_worker; ++i) {
          Md5 md5;
          md5.UpdateU64(static_cast<std::uint64_t>(w) * 10'000'000 + i);
          store.Insert(md5.Final());
        }
      });
    }
    // Sample the serving-thread count mid-storm (the reactor's <=2 vs
    // the baseline's 1+N).
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const int serving = server.serving_threads();
    for (auto& client : clients) client.join();
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    server.Stop();

    ConnRow row;
    row.inserts_per_s =
        wall > 0 ? static_cast<double>(per_worker) *
                       static_cast<double>(workers) / wall
                 : 0;
    row.serving_threads = serving;
    g_conn[(reactor ? std::string("reactor:") : std::string("threads:")) +
           std::to_string(workers)] = row;
    state.counters["inserts_per_s"] = row.inserts_per_s;
    state.counters["serving_threads"] = static_cast<double>(serving);
    if (table.size() != per_worker * static_cast<std::uint64_t>(workers)) {
      state.SkipWithError("conn-scale table lost digests");
    }
  }
}

// Ops-to-K on the Part 2b closed ball: "solo" = one process, two
// workers, in-process sharing; "distributed" = two concurrent
// single-worker processes (separate client objects, as separate OS
// processes would hold) sharing a visited server and a frontier server
// over loopback sockets.
std::map<std::string, StealRow> g_dist;

void RunDistributedSolo(benchmark::State& state) {
  for (auto _ : state) {
    mc::SwarmOptions options;
    options.workers = 2;
    options.cooperative = true;
    options.steal_work = true;
    options.base.mode = mc::SearchMode::kDfs;
    options.base.max_depth = kStealDepth;
    options.base.max_operations = 10 * kStealSingleBudget;
    options.base.target_unique_states = g_steal_target;
    options.base_seed = 500;

    mc::Swarm swarm(options);
    const auto start = std::chrono::steady_clock::now();
    mc::SwarmResult result =
        swarm.Run(MakeMcfsSwarmFactory(ClosedBallConfig()));
    StealRow row;
    row.total_ops = result.total_operations + result.steal_replay_ops;
    row.merged_unique = result.merged_unique_states;
    row.reached_target = result.merged_unique_states >= g_steal_target;
    row.steals = result.steals;
    row.wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
    g_dist["solo-1proc-2w"] = row;
    state.counters["ops_to_target"] = static_cast<double>(row.total_ops);
    state.counters["reached_target"] = row.reached_target ? 1 : 0;
  }
}

void RunDistributedPair(benchmark::State& state) {
  for (auto _ : state) {
    mc::ShardedVisitedTable table;
    net::VisitedService visited_service(&table);
    net::FrameServer visited_server({&visited_service});
    mc::SharedFrontier frontier(/*workers=*/2);
    net::FrontierService frontier_service(&frontier);
    net::FrameServer frontier_server({&frontier_service});
    net::Endpoint loopback;
    loopback.host = "127.0.0.1";
    loopback.port = 0;
    if (!visited_server.Start(loopback).ok() ||
        !frontier_server.Start(loopback).ok()) {
      state.SkipWithError("failed to bind loopback servers");
      return;
    }

    const auto start = std::chrono::steady_clock::now();
    std::vector<mc::SwarmResult> results(2);
    std::vector<std::thread> processes;
    for (int p = 0; p < 2; ++p) {
      processes.emplace_back([&, p] {
        // Each "process" owns its own client objects and connections,
        // exactly as two real OS processes would.
        net::RemoteVisitedStore store(visited_server.endpoint());
        net::RemoteFrontier remote_frontier(frontier_server.endpoint(),
                                            /*workers=*/2);
        mc::SwarmOptions options;
        options.workers = 1;
        options.shared_store = &store;
        options.shared_frontier = &remote_frontier;
        options.base.mode = mc::SearchMode::kDfs;
        options.base.max_depth = kStealDepth;
        options.base.max_operations = 10 * kStealSingleBudget;
        options.base.target_unique_states = g_steal_target;
        // Different seeds so the two processes descend different
        // branches before stealing evens things out.
        options.base_seed = 500 + 37 * p;
        mc::Swarm swarm(options);
        results[p] = swarm.Run(MakeMcfsSwarmFactory(ClosedBallConfig()));
      });
    }
    for (auto& t : processes) t.join();
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    frontier_server.Stop();
    visited_server.Stop();

    StealRow row;
    for (const mc::SwarmResult& result : results) {
      row.total_ops += result.total_operations + result.steal_replay_ops;
      row.steals += result.steals;
    }
    // Coverage is global: the server's table is the merged union.
    row.merged_unique = table.size();
    row.reached_target = row.merged_unique >= g_steal_target;
    row.wall_seconds = wall;
    g_dist["dist-2proc-1w"] = row;
    state.counters["ops_to_target"] = static_cast<double>(row.total_ops);
    state.counters["reached_target"] = row.reached_target ? 1 : 0;
    state.counters["remote_steals"] = static_cast<double>(row.steals);
    state.counters["degradations"] = static_cast<double>(
        results[0].store_degradations + results[1].store_degradations +
        results[0].frontier_degradations +
        results[1].frontier_degradations);
  }
}

// ---------------------------------------------------------------------------
// Part 3b: solo-DFS partial-order reduction on the same closed ball —
// ops to exhaust the space with sleep sets on vs off (DESIGN.md §7.6).
// The depth bound is far above the state count so the closure, not the
// bound, ends both runs and the explored state sets are identical.

struct PorRow {
  std::uint64_t total_ops = 0;
  std::uint64_t unique_states = 0;
  std::uint64_t pruned = 0;
  std::uint64_t awakened = 0;
};

std::map<std::string, PorRow> g_por;

void RunPorAblation(benchmark::State& state, const std::string& label,
                    bool por) {
  for (auto _ : state) {
    McfsConfig config = ClosedBallConfig();
    config.engine.abstraction.incremental = true;
    config.explore.mode = mc::SearchMode::kDfs;
    config.explore.max_operations = 200'000;
    config.explore.max_depth = 100'000;
    config.explore.seed = 7;
    config.explore.por = por;
    auto mcfs = Mcfs::Create(config);
    if (!mcfs.ok()) {
      state.SkipWithError("setup failed");
      return;
    }
    McfsReport report = mcfs.value()->Run();
    PorRow row;
    row.total_ops = report.stats.operations;
    row.unique_states = report.stats.unique_states;
    row.pruned = report.stats.por_pruned_transitions;
    row.awakened = report.stats.por_sleep_awakened;
    g_por[label] = row;
    state.counters["ops_to_exhaustion"] = static_cast<double>(row.total_ops);
    state.counters["unique_states"] = static_cast<double>(row.unique_states);
    state.counters["por_pruned"] = static_cast<double>(row.pruned);
    state.counters["por_awakened"] = static_cast<double>(row.awakened);
  }
}

// ---------------------------------------------------------------------------
// Part 4: a seeded violation cancels all cooperative workers promptly.

void RunCancelOnViolation(benchmark::State& state) {
  for (auto _ : state) {
    // Bug #1 (VeriFS1 truncate-no-zero vs ext4f) trips within a few
    // thousand ops on the small pool — same setup as bench_bug_detection.
    McfsConfig config;
    config.fs_a.kind = FsKind::kExt4;
    config.fs_a.strategy = StateStrategy::kRemountPerOp;
    config.fs_b.kind = FsKind::kVerifs1;
    config.fs_b.strategy = StateStrategy::kIoctl;
    config.fs_b.bugs.truncate_no_zero_on_expand = true;
    config.engine.pool = ParameterPool::Tiny();

    mc::SwarmOptions options;
    options.workers = kCompareWorkers;
    options.cooperative = true;
    // Random walk, the cooperative workhorse: partitioned DFS prunes
    // peer-claimed subtrees, which under a shallow depth bound can
    // exhaust the partitioned tree before reaching the bug state.
    options.base.mode = mc::SearchMode::kRandomWalk;
    // Far beyond ops-to-detection: cancellation keeps this short, and
    // the budget is a bounded backstop rather than an unbounded hang.
    options.base.max_operations = 150'000;
    options.base_seed = 77;

    mc::Swarm swarm(options);
    const auto start = std::chrono::steady_clock::now();
    mc::SwarmResult result = swarm.Run(MakeMcfsSwarmFactory(config));
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    state.counters["violation_found"] = result.any_violation ? 1 : 0;
    state.counters["first_violation_worker"] =
        static_cast<double>(result.first_violation_worker);
    state.counters["total_ops_until_cancel"] =
        static_cast<double>(result.total_operations);
    state.counters["wall_seconds"] = wall;
  }
}

void PrintSummary() {
  std::printf("\n=== Swarm verification scaling (independent) ===\n");
  std::printf("%8s %14s %14s %12s %14s\n", "workers", "merged states",
              "best single", "total ops", "ops/wall-s");
  for (const auto& [workers, row] : g_rows) {
    std::printf("%8d %14llu %14llu %12llu %14.0f\n", workers,
                static_cast<unsigned long long>(row.merged_unique),
                static_cast<unsigned long long>(row.best_single),
                static_cast<unsigned long long>(row.total_ops),
                row.wall_seconds > 0
                    ? static_cast<double>(row.total_ops) / row.wall_seconds
                    : 0);
  }
  const auto one = g_rows.find(1);
  const auto eight = g_rows.find(8);
  if (one != g_rows.end() && eight != g_rows.end() &&
      one->second.merged_unique > 0) {
    std::printf("\nshape check: 8 diversified workers cover %.1fx the "
                "states of one worker under the same per-worker budget.\n",
                static_cast<double>(eight->second.merged_unique) /
                    static_cast<double>(one->second.merged_unique));
  }

  std::printf("\n=== Independent vs cooperative: ops to cover K=%llu "
              "unique states (%d workers) ===\n",
              static_cast<unsigned long long>(g_target_states),
              kCompareWorkers);
  std::printf("%-14s %12s %14s %12s %12s\n", "mode", "total ops",
              "merged states", "redund.", "revisit");
  for (const char* label : {"single", "independent", "cooperative"}) {
    const auto it = g_compare.find(label);
    if (it == g_compare.end()) continue;
    const CompareRow& row = it->second;
    std::printf("%-14s %12llu %14llu %11.1f%% %11.1f%%\n", label,
                static_cast<unsigned long long>(row.total_ops),
                static_cast<unsigned long long>(row.merged_unique),
                100 * row.redundant_discovery, 100 * row.revisit_ratio);
  }
  const auto ind = g_compare.find("independent");
  const auto coop = g_compare.find("cooperative");
  if (ind != g_compare.end() && coop != g_compare.end() &&
      coop->second.total_ops > 0) {
    const bool fewer = coop->second.total_ops < ind->second.total_ops;
    const bool less_redundant = coop->second.redundant_discovery <
                                ind->second.redundant_discovery;
    std::printf("\nshape check: cooperative swarm reached K with %.2fx the "
                "operations of the independent swarm (%s), redundancy "
                "%.1f%% vs %.1f%% (%s).\n",
                static_cast<double>(coop->second.total_ops) /
                    static_cast<double>(ind->second.total_ops),
                fewer ? "fewer, as expected" : "NOT fewer — regression",
                100 * coop->second.redundant_discovery,
                100 * ind->second.redundant_discovery,
                less_redundant ? "lower, as expected"
                               : "NOT lower — regression");
  }
  std::printf("\n=== Work-stealing frontier: ops to cover K=%llu of a "
              "closed ~670-state space (%d workers) ===\n",
              static_cast<unsigned long long>(g_steal_target),
              kCompareWorkers);
  std::printf("%-16s %12s %14s %8s %8s %8s %10s %8s\n", "mode",
              "total ops", "merged states", "K?", "steals", "workers",
              "idle s", "wall s");
  for (const char* label :
       {"single-dfs", "coop-walk", "coop-dfs", "coop-dfs+steal"}) {
    const auto it = g_steal.find(label);
    if (it == g_steal.end()) continue;
    const StealRow& row = it->second;
    std::printf("%-16s %12llu %14llu %8s %8llu %8d %10.3f %8.3f\n", label,
                static_cast<unsigned long long>(row.total_ops),
                static_cast<unsigned long long>(row.merged_unique),
                row.reached_target ? "yes" : "NO",
                static_cast<unsigned long long>(row.steals),
                row.contributing_workers, row.steal_wait_seconds,
                row.wall_seconds);
  }
  const auto walk = g_steal.find("coop-walk");
  const auto dfs = g_steal.find("coop-dfs");
  const auto steal = g_steal.find("coop-dfs+steal");
  if (walk != g_steal.end() && steal != g_steal.end() &&
      steal->second.total_ops > 0) {
    // total_ops includes steal_replay_ops, so the comparison does not
    // hide the cost of transferring work between workers.
    const bool fewer = steal->second.reached_target &&
                       steal->second.total_ops < walk->second.total_ops;
    std::printf("\nshape check: cooperative+stealing reached K with %.3fx "
                "the operations of the plain cooperative (walk) swarm "
                "(%s; walk %s K), with %llu steals (%llu replay ops), "
                "frontier peak %llu, %.3fs total idle.\n",
                static_cast<double>(steal->second.total_ops) /
                    static_cast<double>(walk->second.total_ops),
                fewer ? "fewer, as expected" : "NOT fewer — regression",
                walk->second.reached_target ? "also reached" : "never reached",
                static_cast<unsigned long long>(steal->second.steals),
                static_cast<unsigned long long>(
                    steal->second.steal_replay_ops),
                static_cast<unsigned long long>(steal->second.frontier_peak),
                steal->second.steal_wait_seconds);
  }
  if (dfs != g_steal.end() && steal != g_steal.end()) {
    std::printf("shape check: without stealing, %d of %d DFS workers "
                "contributed discoveries (§7.1 starvation); with "
                "stealing, %d of %d did.\n",
                dfs->second.contributing_workers, kCompareWorkers,
                steal->second.contributing_workers, kCompareWorkers);
  }

  const auto full = g_por.find("dfs-full");
  const auto sleep = g_por.find("dfs-por");
  if (full != g_por.end() && sleep != g_por.end() &&
      full->second.total_ops > 0) {
    const bool same_states =
        full->second.unique_states == sleep->second.unique_states;
    std::printf("\n=== Partial-order reduction, solo DFS to exhaustion "
                "(DESIGN.md §7.6) ===\n");
    std::printf("%-10s %12s %14s %10s %10s\n", "mode", "total ops",
                "unique states", "pruned", "awakened");
    std::printf("%-10s %12llu %14llu %10s %10s\n", "full",
                static_cast<unsigned long long>(full->second.total_ops),
                static_cast<unsigned long long>(full->second.unique_states),
                "-", "-");
    std::printf("%-10s %12llu %14llu %10llu %10llu\n", "por",
                static_cast<unsigned long long>(sleep->second.total_ops),
                static_cast<unsigned long long>(sleep->second.unique_states),
                static_cast<unsigned long long>(sleep->second.pruned),
                static_cast<unsigned long long>(sleep->second.awakened));
    std::printf("shape check: sleep sets exhausted the space with %.3fx "
                "the operations of the full DFS, identical state count: "
                "%s.\n",
                static_cast<double>(sleep->second.total_ops) /
                    static_cast<double>(full->second.total_ops),
                same_states ? "yes" : "NO — soundness regression");
  }

  std::printf("\n=== Distributed swarm over loopback (DESIGN.md §7.3) "
              "===\n");
  const auto scalar = g_remote_insert.find(1);
  const auto batched = g_remote_insert.find(64);
  if (scalar != g_remote_insert.end() && batched != g_remote_insert.end() &&
      scalar->second > 0) {
    std::printf("remote insert throughput: scalar %.0f/s, batch-64 "
                "%.0f/s — batching amortizes the round-trip %.1fx.\n",
                scalar->second, batched->second,
                batched->second / scalar->second);
  }
  if (!g_conn.empty()) {
    std::printf("\nconnection scaling, scalar inserts/s (DESIGN.md §7.9):\n");
    std::printf("%8s %16s %10s %16s %10s\n", "workers", "reactor",
                "(threads)", "thread-per-conn", "(threads)");
    for (int workers : {1, 4, 16, 64}) {
      const auto reactor = g_conn.find("reactor:" + std::to_string(workers));
      const auto baseline = g_conn.find("threads:" + std::to_string(workers));
      if (reactor == g_conn.end() || baseline == g_conn.end()) continue;
      std::printf("%8d %16.0f %10d %16.0f %10d\n", workers,
                  reactor->second.inserts_per_s,
                  reactor->second.serving_threads,
                  baseline->second.inserts_per_s,
                  baseline->second.serving_threads);
    }
    const auto r4 = g_conn.find("reactor:4");
    const auto t4 = g_conn.find("threads:4");
    const auto r64 = g_conn.find("reactor:64");
    const auto t64 = g_conn.find("threads:64");
    if (r4 != g_conn.end() && t4 != g_conn.end() && r64 != g_conn.end() &&
        t64 != g_conn.end() && t4->second.inserts_per_s > 0 &&
        t64->second.inserts_per_s > 0) {
      std::printf("shape check: at 4 workers the reactor serves %.2fx the "
                  "baseline's throughput (%s); at 64 workers %.2fx (%s), "
                  "from %d serving thread(s) vs %d.\n",
                  r4->second.inserts_per_s / t4->second.inserts_per_s,
                  r4->second.inserts_per_s >= t4->second.inserts_per_s
                      ? ">=1, as required"
                      : "BELOW baseline — regression",
                  r64->second.inserts_per_s / t64->second.inserts_per_s,
                  r64->second.inserts_per_s > t64->second.inserts_per_s
                      ? "strictly better, as required"
                      : "NOT better — regression",
                  r64->second.serving_threads, t64->second.serving_threads);
    }
  }
  std::printf("%-16s %12s %14s %8s %8s %8s\n", "deployment", "total ops",
              "merged states", "K?", "steals", "wall s");
  for (const char* label : {"solo-1proc-2w", "dist-2proc-1w"}) {
    const auto it = g_dist.find(label);
    if (it == g_dist.end()) continue;
    const StealRow& row = it->second;
    std::printf("%-16s %12llu %14llu %8s %8llu %8.3f\n", label,
                static_cast<unsigned long long>(row.total_ops),
                static_cast<unsigned long long>(row.merged_unique),
                row.reached_target ? "yes" : "NO",
                static_cast<unsigned long long>(row.steals),
                row.wall_seconds);
  }
  const auto solo = g_dist.find("solo-1proc-2w");
  const auto dist = g_dist.find("dist-2proc-1w");
  if (solo != g_dist.end() && dist != g_dist.end() &&
      solo->second.total_ops > 0) {
    std::printf("shape check: two socket-sharing processes reached K=%llu "
                "with %.2fx the operations of one in-process two-worker "
                "swarm (%s) — the wire adds latency, not wasted search.\n",
                static_cast<unsigned long long>(g_steal_target),
                static_cast<double>(dist->second.total_ops) /
                    static_cast<double>(solo->second.total_ops),
                dist->second.reached_target ? "both reached K"
                                            : "distributed MISSED K");
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (int workers : {1, 2, 4, 8}) {
    benchmark::RegisterBenchmark(
        ("swarm/workers:" + std::to_string(workers)).c_str(),
        [workers](benchmark::State& state) { RunSwarm(state, workers); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  // Registration order is execution order: the single-worker run sets
  // the K target the two swarm modes then race to.
  benchmark::RegisterBenchmark(
      "swarm_compare/single",
      [](benchmark::State& state) { RunCompare(state, "single", false); })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "swarm_compare/independent",
      [](benchmark::State& state) {
        RunCompare(state, "independent", false);
      })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "swarm_compare/cooperative",
      [](benchmark::State& state) {
        RunCompare(state, "cooperative", true);
      })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  // Part 2b registration order: the single-DFS run defines the closed
  // ball's coverage target K before the three 4-worker modes race to it.
  benchmark::RegisterBenchmark(
      "swarm_frontier/single_dfs",
      [](benchmark::State& state) {
        RunStealCompare(state, "single-dfs", mc::SearchMode::kDfs, false);
      })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "swarm_frontier/coop_walk",
      [](benchmark::State& state) {
        RunStealCompare(state, "coop-walk", mc::SearchMode::kRandomWalk,
                        false);
      })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "swarm_frontier/coop_dfs",
      [](benchmark::State& state) {
        RunStealCompare(state, "coop-dfs", mc::SearchMode::kDfs, false);
      })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "swarm_frontier/coop_dfs_steal",
      [](benchmark::State& state) {
        RunStealCompare(state, "coop-dfs+steal", mc::SearchMode::kDfs,
                        true);
      })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "swarm_por/dfs_full",
      [](benchmark::State& state) {
        RunPorAblation(state, "dfs-full", false);
      })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "swarm_por/dfs_por",
      [](benchmark::State& state) { RunPorAblation(state, "dfs-por", true); })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  for (int batch : {1, 64}) {
    benchmark::RegisterBenchmark(
        ("swarm_remote/insert_batch:" + std::to_string(batch)).c_str(),
        [batch](benchmark::State& state) {
          RunRemoteInsertThroughput(state, batch);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  for (int workers : {1, 4, 16, 64}) {
    benchmark::RegisterBenchmark(
        ("conn_scale/reactor/workers:" + std::to_string(workers)).c_str(),
        [workers](benchmark::State& state) {
          RunConnScaling(state, /*reactor=*/true, workers);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("conn_scale/threads/workers:" + std::to_string(workers)).c_str(),
        [workers](benchmark::State& state) {
          RunConnScaling(state, /*reactor=*/false, workers);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  // Needs g_steal_target, so these must run after swarm_frontier/*.
  benchmark::RegisterBenchmark(
      "swarm_remote/solo_1proc_2workers",
      [](benchmark::State& state) { RunDistributedSolo(state); })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "swarm_remote/dist_2proc_1worker",
      [](benchmark::State& state) { RunDistributedPair(state); })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "swarm_cancel/seeded_violation",
      [](benchmark::State& state) { RunCancelOnViolation(state); })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintSummary();
  return 0;
}

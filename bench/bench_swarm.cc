// Swarm verification scaling — paper §2(iii)/§7: seed-diversified
// parallel verifiers jointly cover more of a large state space.
// Sweeps worker counts and reports merged (union) coverage vs the best
// single worker, plus wall-clock throughput.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <map>

#include "mcfs/harness.h"

namespace {

using namespace mcfs;
using namespace mcfs::core;

struct Row {
  std::uint64_t merged_unique = 0;
  std::uint64_t best_single = 0;
  std::uint64_t total_ops = 0;
  double wall_seconds = 0;
};

std::map<int, Row> g_rows;

void RunSwarm(benchmark::State& state, int workers) {
  for (auto _ : state) {
    mc::SwarmOptions options;
    options.workers = workers;
    options.base.mode = mc::SearchMode::kDfs;
    options.base.max_operations = 1500;
    options.base.max_depth = 9;
    // Full visited tables (not bitstate) so the merged union is exact.
    options.base_seed = 100;

    mc::Swarm swarm(options);
    const auto start = std::chrono::steady_clock::now();
    mc::SwarmResult result = swarm.Run([](int) {
      McfsConfig config;
      config.fs_a.kind = FsKind::kVerifs1;
      config.fs_a.strategy = StateStrategy::kIoctl;
      config.fs_b.kind = FsKind::kVerifs2;
      config.fs_b.strategy = StateStrategy::kIoctl;
      config.engine.pool = ParameterPool::Default();
      auto mcfs = Mcfs::Create(config);
      if (!mcfs.ok()) std::abort();
      return std::make_unique<McfsSwarmInstance>(std::move(mcfs).value());
    });
    Row row;
    row.merged_unique = result.merged_unique_states;
    row.total_ops = result.total_operations;
    row.wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
    for (const auto& stats : result.per_worker) {
      row.best_single = std::max(row.best_single, stats.unique_states);
    }
    g_rows[workers] = row;
    state.counters["merged_unique"] =
        static_cast<double>(row.merged_unique);
    state.counters["ops_per_wall_s"] =
        row.wall_seconds > 0
            ? static_cast<double>(row.total_ops) / row.wall_seconds
            : 0;
  }
}

void PrintSummary() {
  std::printf("\n=== Swarm verification scaling ===\n");
  std::printf("%8s %14s %14s %12s %14s\n", "workers", "merged states",
              "best single", "total ops", "ops/wall-s");
  for (const auto& [workers, row] : g_rows) {
    std::printf("%8d %14llu %14llu %12llu %14.0f\n", workers,
                static_cast<unsigned long long>(row.merged_unique),
                static_cast<unsigned long long>(row.best_single),
                static_cast<unsigned long long>(row.total_ops),
                row.wall_seconds > 0
                    ? static_cast<double>(row.total_ops) / row.wall_seconds
                    : 0);
  }
  const auto one = g_rows.find(1);
  const auto eight = g_rows.find(8);
  if (one != g_rows.end() && eight != g_rows.end() &&
      one->second.merged_unique > 0) {
    std::printf("\nshape check: 8 diversified workers cover %.1fx the "
                "states of one worker under the same per-worker budget.\n",
                static_cast<double>(eight->second.merged_unique) /
                    static_cast<double>(one->second.merged_unique));
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (int workers : {1, 2, 4, 8}) {
    benchmark::RegisterBenchmark(
        ("swarm/workers:" + std::to_string(workers)).c_str(),
        [workers](benchmark::State& state) { RunSwarm(state, workers); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintSummary();
  return 0;
}

// Bug-detection benchmark — the paper's §6 case studies, measured as
// operations-to-detection:
//   * VeriFS1 truncate-no-zero, found vs Ext4 (paper: ~9K ops);
//   * VeriFS1 missing cache invalidation, found vs Ext4 (paper: ~12K ops);
//   * VeriFS2 write-hole-no-zero, found vs VeriFS1 (paper: ~900K ops);
//   * VeriFS2 size-update-only-on-growth, found vs VeriFS1 (paper: ~1.2M).
//
// Absolute counts depend on pools and search order; the shape claim is
// that ALL four are caught, and that the two VeriFS2 data bugs take
// substantially longer than the two VeriFS1 bugs (they hide in rarer
// interleavings). Each case sums operations across seed-diversified
// attempts until detection, mirroring swarm-style diversification.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "mcfs/harness.h"

namespace {

using namespace mcfs;
using namespace mcfs::core;

struct BugRow {
  std::string name;
  const char* paper;
  bool found = false;
  std::uint64_t ops_to_detect = 0;
  std::size_t raw_ops = 0;   // records in the raw violating trace
  std::size_t min_ops = 0;   // records after TraceMinimizer
  bool replayed = false;     // minimized trace reproduced on a fresh pair
  bool one_minimal = false;
};

std::vector<BugRow> g_rows;

void RunBugCase(benchmark::State& state, const std::string& name,
                const char* paper_ops, FsKind reference,
                verifs::VerifsBugs bugs, FsKind buggy,
                const ParameterPool& pool) {
  for (auto _ : state) {
    BugRow row;
    row.name = name;
    row.paper = paper_ops;
    std::uint64_t total_ops = 0;
    for (std::uint64_t seed = 1; seed <= 16 && !row.found; ++seed) {
      McfsConfig config;
      config.fs_a.kind = reference;
      config.fs_a.strategy =
          (reference == FsKind::kVerifs1 || reference == FsKind::kVerifs2)
              ? StateStrategy::kIoctl
              : StateStrategy::kRemountPerOp;
      config.fs_b.kind = buggy;
      config.fs_b.strategy = StateStrategy::kIoctl;
      config.fs_b.bugs = bugs;
      config.engine.pool = pool;
      // Keep the whole linear history (ops + snapshot records): the raw
      // trace is the shrink fallback for restore-dependent bugs.
      config.engine.trace_cap = 200'000;
      config.explore.max_operations = 50'000;
      config.explore.max_depth = 8;
      config.explore.seed = seed;
      auto mcfs = Mcfs::Create(config);
      if (!mcfs.ok()) {
        state.SkipWithError("setup failed");
        return;
      }
      McfsReport report = mcfs.value()->Run();
      total_ops += report.stats.operations;
      if (report.stats.violation_found) {
        row.found = true;
        row.ops_to_detect = total_ops;
        // Shrink the violating trace to a 1-minimal reproducer and
        // replay-confirm it on a fresh buggy pair: the paper's
        // reproducibility claim ("Spin logs the precise sequence of
        // operations... simplifying reproducibility", §2), sharpened.
        SyscallEngine& engine = mcfs.value()->engine();
        row.raw_ops = engine.trace().size();
        const EngineOptions& eff = engine.options();
        ShrinkOptions shrink;
        shrink.replay.checker = eff.checker;
        shrink.replay.compare_states = eff.compare_states;
        shrink.replay.abstraction = eff.abstraction;
        shrink.max_replays = 4'000;
        TraceMinimizer minimizer(MakeMcfsReplayFactory(config), shrink);
        ShrinkReport sr;
        bool shrunk = false;
        // Trail first (tiny, snapshot-free); raw linear history as the
        // fallback for bugs that only manifest across a rollback.
        auto trail =
            TraceFromTrail(engine, report.stats.violation_trail);
        if (trail.ok() && minimizer.Minimize(trail.value(), &sr).ok()) {
          shrunk = true;
        }
        if (!shrunk) (void)minimizer.Minimize(engine.trace(), &sr);
        row.min_ops = sr.final_ops;
        row.replayed = sr.replay_confirmed;
        row.one_minimal = sr.one_minimal;
      }
    }
    g_rows.push_back(row);
    state.counters["ops_to_detect"] =
        static_cast<double>(row.ops_to_detect);
    state.counters["found"] = row.found ? 1 : 0;
    state.counters["min_ops"] = static_cast<double>(row.min_ops);
  }
}

void PrintSummary() {
  std::printf("\n=== Bug detection: operations until MCFS reports the "
              "discrepancy ===\n");
  std::printf("%-44s %6s %12s %9s %8s %8s  %s\n", "bug", "found", "ops",
              "raw_trace", "min_ops", "replay", "paper");
  for (const auto& row : g_rows) {
    std::printf("%-44s %6s %12llu %9zu %8zu %8s  %s\n", row.name.c_str(),
                row.found ? "yes" : "NO",
                static_cast<unsigned long long>(row.ops_to_detect),
                row.raw_ops, row.min_ops,
                row.replayed ? (row.one_minimal ? "1-min" : "yes") : "-",
                row.paper);
  }
  if (g_rows.size() == 4 && g_rows[0].found && g_rows[2].found) {
    std::printf("\nshape check: VeriFS2 data bugs take %s ops than the "
                "VeriFS1 bugs (paper: ~100x more)\n",
                g_rows[2].ops_to_detect + g_rows[3].ops_to_detect >
                        g_rows[0].ops_to_detect + g_rows[1].ops_to_detect
                    ? "more"
                    : "FEWER (unexpected)");
  }
}

}  // namespace

int main(int argc, char** argv) {
  verifs::VerifsBugs bug1;
  bug1.truncate_no_zero_on_expand = true;
  verifs::VerifsBugs bug2;
  bug2.skip_cache_invalidation_on_restore = true;
  verifs::VerifsBugs bug3;
  bug3.write_hole_no_zero = true;
  verifs::VerifsBugs bug4;
  bug4.size_update_only_on_capacity_growth = true;

  // The VeriFS1 bugs trip on small pools; the VeriFS2 data bugs need the
  // richer pool (offsets past EOF, multiple sizes) and far more ops —
  // which is the paper's observed ordering.
  const ParameterPool small = ParameterPool::Tiny();
  const ParameterPool rich = ParameterPool::Default();

  auto reg = [&](const char* name, const char* paper, FsKind reference,
                 verifs::VerifsBugs bugs, FsKind buggy,
                 const ParameterPool& pool) {
    benchmark::RegisterBenchmark(name, [=](benchmark::State& state) {
      RunBugCase(state, name, paper, reference, bugs, buggy, pool);
    })->Iterations(1)->Unit(benchmark::kMillisecond);
  };

  reg("verifs1 truncate-no-zero (vs ext4f)", "~9K ops", FsKind::kExt4,
      bug1, FsKind::kVerifs1, small);
  reg("verifs1 no-cache-invalidation (vs ext4f)", "~12K ops",
      FsKind::kExt4, bug2, FsKind::kVerifs1, small);
  reg("verifs2 write-hole-no-zero (vs verifs1)", "~900K ops",
      FsKind::kVerifs1, bug3, FsKind::kVerifs2, rich);
  reg("verifs2 size-only-on-growth (vs verifs1)", "~1.2M ops",
      FsKind::kVerifs1, bug4, FsKind::kVerifs2, rich);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintSummary();
  return 0;
}

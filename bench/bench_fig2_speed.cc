// Figure 2 reproduction: model-checking speed for the paper's file-system
// combinations (§6, "Performance and memory demands").
//
// Paper setup: 256 KB RAM block devices for Ext2/Ext4, 16 MB for XFS;
// VeriFS needs no block device. Kernel pairs use the remount-per-op
// strategy; the VeriFS pair uses the checkpoint/restore ioctls. Speeds
// are simulated ops/s (see DESIGN.md §2 — device latency, remount cost,
// FUSE crossings, and swap penalties all charge a shared SimClock, making
// the shape deterministic and hardware-independent).
//
// Shape expectations from the paper:
//   * VeriFS1-vs-VeriFS2 ~5.8x faster than Ext2-vs-Ext4 (RAM);
//   * Ext2-vs-Ext4 on HDD ~20x and on SSD ~18x slower than on RAM;
//   * Ext4-vs-XFS ~11x slower than Ext2-vs-Ext4 once swap dominates
//     (the paper burned 105 GB of swap on that pair);
//   * Ext4-vs-JFFS2 slow (flash program/erase costs).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>

#include "mcfs/harness.h"

namespace {

using namespace mcfs;
using namespace mcfs::core;

struct Row {
  std::string name;
  double sim_ops_per_sec = 0;
  double wall_ops_per_sec = 0;
  std::uint64_t operations = 0;
  std::uint64_t unique_states = 0;
  std::uint64_t swap_used_mb = 0;
  std::uint64_t por_pruned = 0;
};

std::map<std::string, Row> g_rows;

// The §7.8 state-heavy pool: same namespace as Default(), but writes up
// to 64 KB make the serialized image — not the operations — the
// dominant per-step cost for a copy-the-world checkpointer. This is
// the regime the COW snapshots were built for (the paper's long runs
// grew states until checkpoint copies and swap dominated).
ParameterPool BulkPool() {
  ParameterPool pool = ParameterPool::Default();
  pool.write_sizes = {3000, 32768, 131072};
  pool.truncate_sizes = {0, 8192, 131072};
  return pool;
}

McfsConfig PairConfig(FsKind a, FsKind b, Backend backend,
                      std::uint64_t max_ops, bool incremental, bool por,
                      bool cow = true, bool bulk = false) {
  McfsConfig config;
  config.fs_a.kind = a;
  config.fs_b.kind = b;
  config.fs_a.backend = backend;
  config.fs_b.backend = backend;
  auto strategy = [](FsKind kind) {
    return (kind == FsKind::kVerifs1 || kind == FsKind::kVerifs2)
               ? StateStrategy::kIoctl
               : StateStrategy::kRemountPerOp;
  };
  config.fs_a.strategy = strategy(a);
  config.fs_b.strategy = strategy(b);
  config.engine.pool = bulk ? BulkPool() : ParameterPool::Default();
  config.explore.mode = mc::SearchMode::kDfs;
  config.explore.max_operations = max_ops;
  config.explore.max_depth = 8;
  config.explore.seed = 7;
  // Scaled-down memory system: the 16 MB-per-snapshot XFS pair spills
  // into swap (as the paper's did at 105 GB); the 256 KB pairs do not.
  config.enable_memory_model = true;
  config.memory.ram_bytes = 1ull << 30;
  config.memory.swap_bytes = 64ull << 30;
  // The paper's swap lived on a shared hypervisor SSD; once the XFS
  // pair's 105 GB of state hit it, swap time dominated.
  config.memory.swap_in_cost_per_mb = 1'000'000;
  config.memory.swap_out_cost_per_mb = 1'000'000;
  // The §7.4 rows: same pair, abstraction digests maintained
  // incrementally instead of re-walked per step.
  config.engine.abstraction.incremental = incremental;
  // The §7.6 rows: sleep-set partial-order reduction. Off for the
  // baseline rows so the lift is measured against a plain DFS.
  config.explore.por = por;
  // The §7.8 ablation: structurally-shared (COW) snapshots vs the
  // original copy-the-world serialization per checkpoint/restore.
  config.fs_a.cow_snapshots = cow;
  config.fs_b.cow_snapshots = cow;
  return config;
}

void RunPair(benchmark::State& state, const std::string& name, FsKind a,
             FsKind b, Backend backend, std::uint64_t max_ops,
             bool incremental, bool por, bool cow = true, bool bulk = false) {
  for (auto _ : state) {
    auto mcfs = Mcfs::Create(
        PairConfig(a, b, backend, max_ops, incremental, por, cow, bulk));
    if (!mcfs.ok()) {
      state.SkipWithError("setup failed");
      return;
    }
    McfsReport report = mcfs.value()->Run();
    Row row;
    row.name = name;
    row.sim_ops_per_sec = report.sim_ops_per_sec;
    row.wall_ops_per_sec = report.wall_ops_per_sec;
    row.operations = report.stats.operations;
    row.unique_states = report.stats.unique_states;
    row.swap_used_mb = mcfs.value()->memory() != nullptr
                           ? mcfs.value()->memory()->swap_used() >> 20
                           : 0;
    row.por_pruned = report.stats.por_pruned_transitions;
    g_rows[name] = row;
    state.counters["sim_ops_per_s"] = report.sim_ops_per_sec;
    state.counters["swap_MB"] = static_cast<double>(row.swap_used_mb);
    if (report.stats.violation_found) {
      state.SkipWithError("unexpected violation");
      return;
    }
  }
}

void PrintSummary() {
  std::printf("\n=== Figure 2: model-checking speed (simulated ops/s) ===\n");
  std::printf("%-28s %14s %12s %10s\n", "pair", "sim ops/s", "wall ops/s",
              "swap MB");
  for (const auto& [name, row] : g_rows) {
    std::printf("%-28s %14.1f %12.0f %10llu\n", row.name.c_str(),
                row.sim_ops_per_sec, row.wall_ops_per_sec,
                static_cast<unsigned long long>(row.swap_used_mb));
  }
  auto ratio = [](const char* a, const char* b) {
    auto ia = g_rows.find(a);
    auto ib = g_rows.find(b);
    if (ia == g_rows.end() || ib == g_rows.end() ||
        ib->second.sim_ops_per_sec == 0) {
      return 0.0;
    }
    return ia->second.sim_ops_per_sec / ib->second.sim_ops_per_sec;
  };
  std::printf("\nshape checks (paper expectation in parentheses):\n");
  std::printf("  verifs1-vs-verifs2 / ext2-vs-ext4(ram) = %.1fx   (~5.8x)\n",
              ratio("verifs1-vs-verifs2", "ext2-vs-ext4(ram)"));
  std::printf("  ext2-vs-ext4(ram) / ext2-vs-ext4(ssd)  = %.1fx   (~18x)\n",
              ratio("ext2-vs-ext4(ram)", "ext2-vs-ext4(ssd)"));
  std::printf("  ext2-vs-ext4(ram) / ext2-vs-ext4(hdd)  = %.1fx   (~20x)\n",
              ratio("ext2-vs-ext4(ram)", "ext2-vs-ext4(hdd)"));
  std::printf("  ext2-vs-ext4(ram) / ext4-vs-xfs(ram)   = %.1fx   (~11x)\n",
              ratio("ext2-vs-ext4(ram)", "ext4-vs-xfs(ram)"));
  std::printf("  ext2-vs-ext4(ram) / ext4-vs-jffs2      = %.1fx   (slower)\n",
              ratio("ext2-vs-ext4(ram)", "ext4-vs-jffs2"));
  std::printf("\nCOW snapshot lift (DESIGN.md §7.8, deep DFS):\n");
  std::printf("  verifs1-vs-verifs2(bulk) / (bulk,deepcopy)        = %.1fx"
              "   (state-heavy, target >=5x)\n",
              ratio("verifs1-vs-verifs2(bulk)",
                    "verifs1-vs-verifs2(bulk,deepcopy)"));
  std::printf("  verifs1-vs-verifs2 / verifs1-vs-verifs2(deepcopy) = %.1fx"
              "   (small states: captures are minor there)\n",
              ratio("verifs1-vs-verifs2", "verifs1-vs-verifs2(deepcopy)"));
  std::printf("\nincremental-abstraction lift (DESIGN.md §7.4):\n");
  std::printf("  verifs1-vs-verifs2(incr) / verifs1-vs-verifs2 = %.2fx\n",
              ratio("verifs1-vs-verifs2(incr)", "verifs1-vs-verifs2"));
  std::printf("  ext2-vs-ext4(ram,incr) / ext2-vs-ext4(ram)    = %.2fx\n",
              ratio("ext2-vs-ext4(ram,incr)", "ext2-vs-ext4(ram)"));
  // POR's dividend is coverage, not per-op speed: pruned commutations
  // let the same op budget reach more distinct states (the exhaustion
  // comparison lives in bench_swarm's swarm_por rows).
  const auto incr = g_rows.find("verifs1-vs-verifs2(incr)");
  const auto por = g_rows.find("verifs1-vs-verifs2(incr,por)");
  if (incr != g_rows.end() && por != g_rows.end() &&
      incr->second.unique_states > 0) {
    std::printf("\npartial-order reduction (DESIGN.md §7.6):\n");
    std::printf("  unique states per %llu-op budget: %llu with sleep sets "
                "vs %llu without (%.2fx), %llu transitions pruned\n",
                static_cast<unsigned long long>(por->second.operations),
                static_cast<unsigned long long>(por->second.unique_states),
                static_cast<unsigned long long>(incr->second.unique_states),
                static_cast<double>(por->second.unique_states) /
                    static_cast<double>(incr->second.unique_states),
                static_cast<unsigned long long>(por->second.por_pruned));
  }
}

}  // namespace

int main(int argc, char** argv) {
  auto reg = [](const char* name, FsKind a, FsKind b, Backend backend,
                std::uint64_t ops, bool incremental = false,
                bool por = false, bool cow = true, bool bulk = false) {
    benchmark::RegisterBenchmark(
        name,
        [=](benchmark::State& state) {
          RunPair(state, name, a, b, backend, ops, incremental, por, cow,
                  bulk);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  };

  reg("ext2-vs-ext4(ram)", FsKind::kExt2, FsKind::kExt4, Backend::kRam,
      2000);
  reg("ext2-vs-ext4(ssd)", FsKind::kExt2, FsKind::kExt4, Backend::kSsd,
      800);
  reg("ext2-vs-ext4(hdd)", FsKind::kExt2, FsKind::kExt4, Backend::kHdd,
      500);
  reg("ext4-vs-xfs(ram)", FsKind::kExt4, FsKind::kXfs, Backend::kRam,
      1500);
  reg("ext4-vs-jffs2", FsKind::kExt4, FsKind::kJffs2, Backend::kRam, 800);
  reg("verifs1-vs-verifs2", FsKind::kVerifs1, FsKind::kVerifs2,
      Backend::kRam, 2000);
  // COW ablation: the same deep DFS with the original copy-the-world
  // snapshots — every save serializes and every backtrack re-parses the
  // full state. On the small-state Default pool the captures are a
  // minor cost; the (bulk) pair below is the state-heavy regime the
  // COW snapshots target, with incremental hashing on (the repo
  // default) so concrete capture really is the per-step floor.
  reg("verifs1-vs-verifs2(deepcopy)", FsKind::kVerifs1, FsKind::kVerifs2,
      Backend::kRam, 2000, /*incremental=*/false, /*por=*/false,
      /*cow=*/false);
  reg("verifs1-vs-verifs2(bulk)", FsKind::kVerifs1, FsKind::kVerifs2,
      Backend::kRam, 2000, /*incremental=*/true, /*por=*/false,
      /*cow=*/true, /*bulk=*/true);
  reg("verifs1-vs-verifs2(bulk,deepcopy)", FsKind::kVerifs1,
      FsKind::kVerifs2, Backend::kRam, 2000, /*incremental=*/true,
      /*por=*/false, /*cow=*/false, /*bulk=*/true);
  reg("ext2-vs-ext4(ram,incr)", FsKind::kExt2, FsKind::kExt4,
      Backend::kRam, 2000, /*incremental=*/true);
  reg("verifs1-vs-verifs2(incr)", FsKind::kVerifs1, FsKind::kVerifs2,
      Backend::kRam, 2000, /*incremental=*/true);
  reg("verifs1-vs-verifs2(incr,por)", FsKind::kVerifs1, FsKind::kVerifs2,
      Backend::kRam, 2000, /*incremental=*/true, /*por=*/true);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintSummary();
  return 0;
}

// Snapshot-strategy comparison — paper §5.
//
// Rows:
//   * remount-per-op (kernel FS reference, ext2f vs ext4f);
//   * VeriFS checkpoint/restore ioctls (the paper's proposal);
//   * VM snapshotting at LightVM latencies — "limited our model-checking
//     rate to only 20-30 operations/s";
//   * CRIU: refuses the FUSE daemon outright (EBUSY, because /dev/fuse is
//     a character device) but can snapshot a Ganesha-style socket-only
//     server; the per-op dump/restore rate is reported for the latter.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "fuse/fuse_channel.h"
#include "fuse/fuse_host.h"
#include "mcfs/harness.h"
#include "snapshot/criu.h"
#include "verifs/verifs2.h"

namespace {

using namespace mcfs;
using namespace mcfs::core;

std::map<std::string, double> g_rates;
std::string g_criu_note;

void RunMcfsCase(benchmark::State& state, const std::string& name,
                 FsKind a, FsKind b, StateStrategy strategy,
                 std::uint64_t ops, bool nfs_transport = false,
                 bool cow = true) {
  for (auto _ : state) {
    McfsConfig config;
    config.fs_a.kind = a;
    config.fs_b.kind = b;
    config.fs_a.strategy = strategy;
    config.fs_b.strategy = strategy;
    config.fs_a.nfs_transport = nfs_transport;
    config.fs_b.nfs_transport = nfs_transport;
    config.fs_a.cow_snapshots = cow;
    config.fs_b.cow_snapshots = cow;
    config.engine.pool = ParameterPool::Default();
    config.explore.max_operations = ops;
    config.explore.max_depth = 8;
    config.explore.seed = 13;
    auto mcfs = Mcfs::Create(config);
    if (!mcfs.ok()) {
      state.SkipWithError("setup failed");
      return;
    }
    McfsReport report = mcfs.value()->Run();
    g_rates[name] = report.sim_ops_per_sec;
    state.counters["sim_ops_per_s"] = report.sim_ops_per_sec;
  }
}

// CRIU on the FUSE daemon (refusal) and on a Ganesha-style server (per-op
// checkpoint/restore rate).
void RunCriuCase(benchmark::State& state) {
  class GaneshaProcess : public snapshot::ProcessDescriptor {
   public:
    GaneshaProcess() {
      (void)state_.Mkfs();
      (void)state_.Mount();
    }
    std::string name() const override { return "nfs-ganesha"; }
    std::vector<std::string> open_device_paths() const override {
      return {};
    }
    Bytes CaptureMemory() const override { return state_.ExportState(); }
    Status RestoreMemory(ByteView image) override {
      state_.ImportState(image);
      return Status::Ok();
    }
    verifs::Verifs2& fs() { return state_; }

   private:
    verifs::Verifs2 state_;
  };

  for (auto _ : state) {
    // Refusal path: the FUSE daemon holds /dev/fuse.
    SimClock clock;
    fuse::FuseChannel channel(&clock);
    auto hosted = std::make_shared<verifs::Verifs2>();
    fuse::FuseHost host(hosted, &channel);
    class FuseProc : public snapshot::ProcessDescriptor {
     public:
      explicit FuseProc(fuse::FuseHost* h) : host_(h) {}
      std::string name() const override { return "verifs-fuse"; }
      std::vector<std::string> open_device_paths() const override {
        return {host_->held_device_path()};
      }
      Bytes CaptureMemory() const override { return {}; }
      Status RestoreMemory(ByteView) override { return Errno::kENOTSUP; }

     private:
      fuse::FuseHost* host_;
    } fuse_proc(&host);

    snapshot::CriuSnapshotter criu(&clock);
    const Status refusal = criu.Checkpoint(1, fuse_proc);
    g_criu_note = refusal.error() == Errno::kEBUSY
                      ? "CRIU refused the FUSE daemon (EBUSY, /dev/fuse "
                        "is a character device)"
                      : "UNEXPECTED: CRIU accepted the FUSE daemon";

    // Ganesha path: one op = one mutation + checkpoint + restore cycle.
    GaneshaProcess ganesha;
    const int kOps = 100;
    for (int i = 0; i < kOps; ++i) {
      auto fd = ganesha.fs().Open("/f", fs::kCreate | fs::kWrOnly, 0644);
      if (fd.ok()) {
        (void)ganesha.fs().Write(fd.value(), 0, Bytes(100, 'g'));
        (void)ganesha.fs().Close(fd.value());
      }
      (void)criu.Checkpoint(2, ganesha);
      (void)criu.Restore(2, ganesha);
    }
    const double rate = kOps / clock.seconds();
    g_rates["criu ganesha-style server"] = rate;
    state.counters["sim_ops_per_s"] = rate;
  }
}

void PrintSummary() {
  std::printf("\n=== Snapshot strategies (simulated ops/s) ===\n");
  std::printf("%-38s %14s\n", "strategy", "sim ops/s");
  for (const auto& [name, rate] : g_rates) {
    std::printf("%-38s %14.1f\n", name.c_str(), rate);
  }
  std::printf("\n%s\n", g_criu_note.c_str());
  auto rate = [](const char* name) {
    auto it = g_rates.find(name);
    return it == g_rates.end() ? 0.0 : it->second;
  };
  std::printf("\nshape checks (paper expectation in parentheses):\n");
  std::printf("  VM snapshotting rate: %.1f ops/s   (20-30 ops/s)\n",
              rate("vm-snapshot verifs pair"));
  std::printf("  ioctls vs VM: %.0fx faster   (the paper's motivation "
              "for FS-level APIs)\n",
              rate("vm-snapshot verifs pair") > 0
                  ? rate("ioctl verifs pair") /
                        rate("vm-snapshot verifs pair")
                  : 0.0);
  std::printf("  COW vs deep-copy ioctls: %.1fx faster   (DESIGN.md §7.8; "
              "small states — the state-heavy regime is bench_fig2_speed's "
              "(bulk) rows)\n",
              rate("ioctl verifs pair (deep-copy)") > 0
                  ? rate("ioctl verifs pair") /
                        rate("ioctl verifs pair (deep-copy)")
                  : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  auto reg = [](const char* name, FsKind a, FsKind b, StateStrategy s,
                std::uint64_t ops, bool nfs = false, bool cow = true) {
    benchmark::RegisterBenchmark(name, [=](benchmark::State& state) {
      RunMcfsCase(state, name, a, b, s, ops, nfs, cow);
    })->Iterations(1)->Unit(benchmark::kMillisecond);
  };
  reg("remount kernel pair", FsKind::kExt2, FsKind::kExt4,
      StateStrategy::kRemountPerOp, 1000);
  // The §7 future-work strategy implemented here: kernel FSes with the
  // VFS-level checkpoint/restore API — coherent, and no remounts.
  reg("vfs-api kernel pair", FsKind::kExt2, FsKind::kExt4,
      StateStrategy::kVfsApi, 1000);
  reg("ioctl verifs pair", FsKind::kVerifs1, FsKind::kVerifs2,
      StateStrategy::kIoctl, 1500);
  reg("ioctl verifs pair (deep-copy)", FsKind::kVerifs1, FsKind::kVerifs2,
      StateStrategy::kIoctl, 1500, /*nfs=*/false, /*cow=*/false);
  reg("vm-snapshot verifs pair", FsKind::kVerifs1, FsKind::kVerifs2,
      StateStrategy::kVmSnapshot, 300);
  // Paper §5's CRIU direction, end to end: VeriFS hosted in a
  // Ganesha-style NFS server (socket transport), state captured by
  // process dumps.
  reg("criu nfs-ganesha verifs pair", FsKind::kVerifs1, FsKind::kVerifs2,
      StateStrategy::kCriu, 300, /*nfs=*/true);
  benchmark::RegisterBenchmark("criu", RunCriuCase)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintSummary();
  return 0;
}

// Abstraction-function ablation — paper §3.3 ("State Explosion").
//
// Spin's raw c_track of concrete buffers treats ANY byte change as a new
// state, so noise (atime updates, allocation placement) explodes the
// visited set: "Spin could not fully explore file systems with even
// moderate parameter spaces." The paper's fix is Algorithm 1: hash only
// paths, data, and important metadata.
//
// The bench runs a SMALL bounded workload to exhaustion with the proper
// abstraction and with a noisy abstraction that also hashes timestamps
// (a stand-in for raw-buffer tracking). The proper abstraction exhausts
// the space at a finite state count; the noisy one keeps minting "new"
// states until the operation cap — the explosion, made visible.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "mcfs/harness.h"

namespace {

using namespace mcfs;
using namespace mcfs::core;

struct Row {
  std::uint64_t operations = 0;
  std::uint64_t unique_states = 0;
  std::uint64_t revisits = 0;
  std::uint64_t table_bytes = 0;
  bool exhausted = false;  // search ended before the op cap
};

constexpr std::uint64_t kOpCap = 20'000;

std::map<std::string, Row> g_rows;

void RunCase(benchmark::State& state, const std::string& name,
             bool include_timestamps) {
  for (auto _ : state) {
    McfsConfig config;
    config.fs_a.kind = FsKind::kVerifs1;
    config.fs_a.strategy = StateStrategy::kIoctl;
    config.fs_b.kind = FsKind::kVerifs2;
    config.fs_b.strategy = StateStrategy::kIoctl;
    config.engine.pool = ParameterPool::Tiny();
    config.engine.abstraction.include_timestamps = include_timestamps;
    config.explore.max_operations = kOpCap;
    config.explore.max_depth = 6;
    config.explore.seed = 6;
    auto mcfs = Mcfs::Create(config);
    if (!mcfs.ok()) {
      state.SkipWithError("setup failed");
      return;
    }
    mc::ExplorerOptions opts = config.explore;
    opts.clock = &mcfs.value()->clock();
    mc::Explorer explorer(mcfs.value()->engine(), opts);
    mc::ExploreStats stats = explorer.Run();
    Row row;
    row.operations = stats.operations;
    row.unique_states = stats.unique_states;
    row.revisits = stats.revisits;
    row.table_bytes = explorer.visited().bytes_used();
    row.exhausted = stats.operations < kOpCap;
    g_rows[name] = row;
    state.counters["unique_states"] =
        static_cast<double>(row.unique_states);
    state.counters["exhausted"] = row.exhausted ? 1 : 0;
  }
}

void PrintSummary() {
  std::printf("\n=== Abstraction ablation (paper §3.3) ===\n");
  std::printf("%-34s %10s %14s %10s %12s %10s\n", "abstraction", "ops",
              "unique states", "revisits", "table bytes", "exhausted");
  for (const auto& [name, row] : g_rows) {
    std::printf("%-34s %10llu %14llu %10llu %12llu %10s\n", name.c_str(),
                static_cast<unsigned long long>(row.operations),
                static_cast<unsigned long long>(row.unique_states),
                static_cast<unsigned long long>(row.revisits),
                static_cast<unsigned long long>(row.table_bytes),
                row.exhausted ? "yes" : "NO");
  }
  const auto proper = g_rows.find("algorithm-1 (noise excluded)");
  const auto noisy = g_rows.find("noisy (timestamps hashed)");
  if (proper != g_rows.end() && noisy != g_rows.end() &&
      proper->second.unique_states > 0) {
    std::printf(
        "\nshape check: the proper abstraction exhausts the bounded space "
        "at %llu states;\nnoisy tracking mints %.0fx more \"unique\" "
        "states from the identical workload%s — the §3.3 state "
        "explosion.\n",
        static_cast<unsigned long long>(proper->second.unique_states),
        static_cast<double>(noisy->second.unique_states) /
            static_cast<double>(proper->second.unique_states),
        noisy->second.exhausted ? "" : " and never finishes");
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::RegisterBenchmark("algorithm-1 (noise excluded)",
                               [](benchmark::State& state) {
                                 RunCase(state,
                                         "algorithm-1 (noise excluded)",
                                         false);
                               })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("noisy (timestamps hashed)",
                               [](benchmark::State& state) {
                                 RunCase(state,
                                         "noisy (timestamps hashed)",
                                         true);
                               })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintSummary();
  return 0;
}

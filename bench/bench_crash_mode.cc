// Crash-exploration overhead (DESIGN.md §7.7): the same closed workload
// explored with crash mode off vs kEveryOp, per file-system pair and
// barrier model. Crash mode pays one device snapshot + up to max_states
// remount-and-validate probes per applied operation, so the interesting
// numbers are the slowdown factor and the crash-states-per-op rate the
// barrier discipline actually produces (ext2f only writes at fsync; the
// log-structured jffs2f appends on every op).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "mcfs/harness.h"

namespace {

using namespace mcfs;
using namespace mcfs::core;

struct Row {
  double wall_ops_per_sec = 0;
  std::uint64_t crash_checks = 0;
  std::uint64_t crash_states = 0;
};

std::map<std::string, Row> g_rows;

void RunCase(benchmark::State& state, const std::string& name, FsKind a,
             FsKind b, bool crash, storage::BarrierModel model,
             std::uint64_t ops) {
  for (auto _ : state) {
    McfsConfig config;
    config.fs_a.kind = a;
    config.fs_a.strategy = StateStrategy::kVfsApi;
    config.fs_a.fuse_transport = false;
    config.fs_a.block_cache_capacity = 0;
    config.fs_b = config.fs_a;
    config.fs_b.kind = b;
    config.engine.pool = ParameterPool::Tiny();
    config.engine.pool.include_fsync_ops = true;
    config.engine.abstraction.incremental = false;
    config.engine.crash.enabled = crash;
    config.engine.crash.states.barrier_model = model;
    config.explore.mode = mc::SearchMode::kDfs;
    config.explore.crash_mode =
        crash ? mc::CrashMode::kEveryOp : mc::CrashMode::kOff;
    config.explore.por = false;
    config.explore.max_operations = ops;
    config.explore.max_depth = 3;
    config.explore.seed = 1;
    auto mcfs = Mcfs::Create(config);
    if (!mcfs.ok()) {
      state.SkipWithError("setup failed");
      return;
    }
    McfsReport report = mcfs.value()->Run();
    if (report.stats.violation_found) {
      state.SkipWithError("unexpected violation");
      return;
    }
    Row row;
    row.wall_ops_per_sec = report.wall_ops_per_sec;
    row.crash_checks = report.counters.crash_checks;
    row.crash_states = report.counters.crash_states_checked;
    g_rows[name] = row;
    state.counters["wall_ops_per_s"] = row.wall_ops_per_sec;
    state.counters["crash_states"] = static_cast<double>(row.crash_states);
  }
}

void PrintSummary() {
  std::printf("\n=== Crash-mode overhead (wall ops/s) ===\n");
  std::printf("%-36s %12s %12s %14s\n", "configuration", "wall ops/s",
              "crash checks", "crash states");
  for (const auto& [name, row] : g_rows) {
    std::printf("%-36s %12.1f %12llu %14llu\n", name.c_str(),
                row.wall_ops_per_sec,
                static_cast<unsigned long long>(row.crash_checks),
                static_cast<unsigned long long>(row.crash_states));
  }
  auto factor = [](const char* off, const char* on) {
    auto io = g_rows.find(off);
    auto in = g_rows.find(on);
    if (io == g_rows.end() || in == g_rows.end() ||
        in->second.wall_ops_per_sec == 0) {
      return 0.0;
    }
    return io->second.wall_ops_per_sec / in->second.wall_ops_per_sec;
  };
  std::printf("\nslowdown factors (crash mode on vs off):\n");
  std::printf("  ext2-vs-jffs2 reorderable: %.1fx\n",
              factor("ext2-vs-jffs2 off", "ext2-vs-jffs2 reorderable"));
  std::printf("  ext2-vs-jffs2 ordered:     %.1fx\n",
              factor("ext2-vs-jffs2 off", "ext2-vs-jffs2 ordered"));
  std::printf("  ext4-vs-ext4  reorderable: %.1fx\n",
              factor("ext4-vs-ext4 off", "ext4-vs-ext4 reorderable"));
}

}  // namespace

int main(int argc, char** argv) {
  auto reg = [](const char* name, FsKind a, FsKind b, bool crash,
                storage::BarrierModel model, std::uint64_t ops) {
    benchmark::RegisterBenchmark(name, [=](benchmark::State& state) {
      RunCase(state, name, a, b, crash, model, ops);
    })->Iterations(1)->Unit(benchmark::kMillisecond);
  };
  using storage::BarrierModel;
  reg("ext2-vs-jffs2 off", FsKind::kExt2, FsKind::kJffs2, false,
      BarrierModel::kReorderable, 600);
  reg("ext2-vs-jffs2 reorderable", FsKind::kExt2, FsKind::kJffs2, true,
      BarrierModel::kReorderable, 600);
  reg("ext2-vs-jffs2 ordered", FsKind::kExt2, FsKind::kJffs2, true,
      BarrierModel::kOrdered, 600);
  reg("ext4-vs-ext4 off", FsKind::kExt4, FsKind::kExt4, false,
      BarrierModel::kReorderable, 600);
  reg("ext4-vs-ext4 reorderable", FsKind::kExt4, FsKind::kExt4, true,
      BarrierModel::kReorderable, 600);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintSummary();
  return 0;
}
